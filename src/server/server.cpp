#include "server/server.hpp"

#include <exception>
#include <utility>

#include "server/wire.hpp"

namespace mss::server {

namespace {

std::string error_payload(ErrorCode code, const std::string& message) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Error));
  w.u16(std::uint16_t(code));
  w.str(message);
  return w.take();
}

void write_status_body(WireWriter& w, const JobStatus& s) {
  w.u64(s.id);
  w.u8(std::uint8_t(s.state));
  w.u64(s.total);
  w.u64(s.rows_done);
  w.u64(s.evaluated);
  w.u64(s.cache_hits);
  w.u64(s.memo_hits);
  w.u64(s.slices);
  w.str(s.error);
}

} // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

Server::Server(ServerOptions options, Registry registry)
    : options_(std::move(options)),
      registry_(std::move(registry)),
      cache_(options_.cache_path, CacheOptions{options_.cache_max_bytes}),
      listener_(options_.socket_path) {
  if (options_.compact_cache_on_start) cache_.compact();
  if (!options_.listen_address.empty()) {
    tcp_listener_.emplace(util::parse_host_port(options_.listen_address));
  }
}

Server::~Server() {
  request_stop();
  wait();
}

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(listener_); });
  if (tcp_listener_) {
    tcp_accept_thread_ = std::thread([this] { accept_loop_tcp(*tcp_listener_); });
  }
  executor_thread_ = std::thread([this] { executor_loop(); });
  reaper_thread_ = std::thread([this] { reaper_loop(); });
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  queue_.close();
  listener_.shutdown();
  if (tcp_listener_) tcp_listener_->shutdown();
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> jlk(job->m);
      if (job->state == JobState::Queued) job->state = JobState::Cancelled;
      job->cv.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (auto& conn : conns_) conn.fd.shutdown_rw();
  }
  conns_cv_.notify_all();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (tcp_accept_thread_.joinable()) tcp_accept_thread_.join();
  if (executor_thread_.joinable()) executor_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  // The accept threads and the reaper (sole erasers of conns_) are
  // joined: the list structure is stable, safe to iterate unlocked — and
  // we must not hold conns_m_ here, a handler serving a Shutdown frame
  // takes it inside request_stop() and again when closing its fd on exit.
  for (auto& conn : conns_) {
    if (conn.th.joinable()) conn.th.join();
  }
}

std::size_t Server::connection_entries() const {
  std::lock_guard<std::mutex> lk(conns_m_);
  return conns_.size();
}

std::size_t Server::live_connections() const {
  std::lock_guard<std::mutex> lk(conns_m_);
  std::size_t n = 0;
  for (const auto& conn : conns_) {
    if (!conn.done.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void Server::accept_loop(util::UnixListener& listener) {
  try {
    while (true) {
      util::Fd client = listener.accept();
      if (!client.valid()) return; // shutdown
      handle_accepted(std::move(client));
    }
  } catch (const std::exception&) {
    // accept() already retried every transient errno; a throw means this
    // listener is irrecoverably broken. Stop accepting on it — running
    // jobs and the other transport keep serving.
  }
}

void Server::accept_loop_tcp(util::TcpListener& listener) {
  try {
    while (true) {
      util::Fd client = listener.accept();
      if (!client.valid()) return; // shutdown
      handle_accepted(std::move(client));
    }
  } catch (const std::exception&) {
    // Same contract as the unix accept loop.
  }
}

void Server::handle_accepted(util::Fd client) {
  // Garbage-collect finished handlers before adding a new one: the table
  // stays bounded by live connections (+ reap latency), not by the
  // connection count since startup. The dedicated reaper also collects on
  // every handler exit, so an idle accept loop does not delay reclamation.
  reap_finished_conns();
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    std::size_t live = 0;
    for (const auto& conn : conns_) {
      if (!conn.done.load(std::memory_order_acquire)) ++live;
    }
    if (options_.max_conns == 0 || live < options_.max_conns) {
      conns_.emplace_back();
      Conn& conn = conns_.back();
      conn.fd = std::move(client);
      if (stopping_.load(std::memory_order_relaxed)) {
        // request_stop() may already have swept conns_ — shut this one
        // down ourselves (under the same mutex, so exactly one of us does
        // it last) and let the handler exit on the dead socket.
        conn.fd.shutdown_rw();
      }
      conn.th = std::thread([this, &conn] { handle_connection(conn); });
      return;
    }
  }
  // Over the cap: a typed, retryable refusal instead of a silent close or
  // an unbounded handler pile-up. Sent outside conns_m_ (a fresh socket's
  // send buffer is empty, but a hostile peer must not stall the accept
  // loop while holding the connection-table lock); failures are the
  // peer's problem.
  try {
    send_frame(client, error_payload(ErrorCode::Busy,
                                     "connection limit reached, retry later"),
               options_.io_timeout_ms);
  } catch (...) {
  }
}

void Server::reap_finished_conns() {
  std::list<Conn> finished;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->done.load(std::memory_order_acquire)) {
        finished.splice(finished.end(), conns_, it++);
      } else {
        ++it;
      }
    }
  }
  // Join outside conns_m_: a handler flags done (under the lock) as its
  // final statement, so these joins only wait out the thread's return.
  for (auto& conn : finished) {
    if (conn.th.joinable()) conn.th.join();
  }
}

void Server::reaper_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lk(conns_m_);
      conns_cv_.wait(lk, [this] {
        if (stopping_.load(std::memory_order_relaxed)) return true;
        for (const auto& conn : conns_) {
          if (conn.done.load(std::memory_order_acquire)) return true;
        }
        return false;
      });
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    reap_finished_conns();
  }
  // Leftover entries (handlers still draining at shutdown) are joined by
  // wait() after every eraser thread is gone.
}

void Server::executor_loop() {
  while (auto id = queue_.pop()) {
    const auto job = find_job(*id);
    if (!job) continue;
    if (run_slice(*job)) {
      // More stripes remain: rotate to the back of the job's priority
      // level. Equal-priority jobs therefore interleave stripe by stripe;
      // a higher-priority submission preempts at the next boundary.
      if (!queue_.push(job->id, job->priority)) {
        // Re-enqueue raced shutdown — nothing will pop this job again.
        finish_cancelled(*job);
      }
    }
  }
}

std::shared_ptr<Server::Job> Server::find_job(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(jobs_m_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobStatus Server::snapshot_locked(const Job& job) {
  JobStatus s;
  s.id = job.id;
  s.state = job.state;
  s.total = job.space.size();
  s.rows_done = job.rows.size();
  s.evaluated = job.stats.evaluated;
  s.cache_hits = job.stats.cache_hits;
  s.memo_hits = job.stats.memo_hits;
  s.slices = job.slices;
  s.error = job.error;
  return s;
}

bool Server::run_slice(Job& job) {
  if (job.cancel.load(std::memory_order_relaxed)) {
    finish_cancelled(job);
    return false;
  }
  {
    std::lock_guard<std::mutex> lk(job.m);
    if (is_terminal(job.state)) return false; // cancelled while queued
    if (job.state == JobState::Queued) {
      job.state = JobState::Running;
      job.cv.notify_all();
    }
  }
  if (!job.run) {
    job.run =
        std::make_unique<StripedRun>(*job.exp, job.space, job.opts, &cache_);
  }
  try {
    job.run->step();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lk(job.m);
      job.error = e.what();
      job.state = JobState::Failed;
      ++job.slices;
      job.cv.notify_all();
    }
    job.run.reset();
    return false;
  }
  const bool finished = job.run->finished();
  {
    std::lock_guard<std::mutex> lk(job.m);
    const auto& all = job.run->rows();
    for (std::size_t i = job.rows.size(); i < job.run->done_end(); ++i) {
      job.rows.push_back(all[i]);
    }
    job.stats = job.run->stats();
    ++job.slices;
    if (finished) job.state = JobState::Done;
    job.cv.notify_all();
  }
  if (finished) job.run.reset();
  return !finished;
}

void Server::finish_cancelled(Job& job) {
  {
    std::lock_guard<std::mutex> lk(job.m);
    if (!is_terminal(job.state)) {
      job.state = JobState::Cancelled;
      job.cv.notify_all();
    }
  }
  // Rows already streamed stay valid (and cached); the partial run state
  // is all that dies.
  job.run.reset();
}

void Server::handle_connection(Conn& conn) {
  util::Fd& fd = conn.fd;
  // Every receive and send carries the per-connection idle timeout: a peer
  // making no byte of progress for io_timeout_ms — half a header then
  // silence (slow loris), or a fetch reader that stopped draining — throws
  // ETIMEDOUT out of the frame loop and is evicted like any dead socket.
  const int t = options_.io_timeout_ms;
  try {
    const auto hello = recv_frame(fd, t);
    if (hello) {
      bool ok = false;
      {
        WireReader r(*hello);
        if (FrameType(r.u8()) != FrameType::Hello) {
          send_frame(fd, error_payload(ErrorCode::BadFrame,
                                       "expected Hello handshake"),
                     t);
        } else {
          const std::uint32_t version = r.u32();
          if (version != kProtocolVersion) {
            send_frame(fd, error_payload(
                               ErrorCode::BadVersion,
                               "protocol version " + std::to_string(version) +
                                   " unsupported, server speaks " +
                                   std::to_string(kProtocolVersion)),
                       t);
          } else {
            WireWriter w;
            w.u8(std::uint8_t(FrameType::HelloOk));
            w.u32(kProtocolVersion);
            w.str(options_.server_id);
            send_frame(fd, w.take(), t);
            ok = true;
          }
        }
      }
      if (ok) {
        while (auto payload = recv_frame(fd, t)) {
          if (!handle_frame(fd, *payload)) break;
        }
      }
    }
  } catch (const WireError&) {
    // Oversized/garbled framing: best-effort error, then drop the peer.
    try {
      send_frame(fd, error_payload(ErrorCode::BadFrame, "malformed frame"), t);
    } catch (...) {
    }
  } catch (const std::exception&) {
    // Socket torn down (peer died, idle timeout, or server stopping) —
    // nothing to reply to.
  }
  // Handler exit = connection over: release the fd now (not at server
  // shutdown — a daemon must not leak an fd per client for its lifetime)
  // and flag the entry, then wake the reaper so the slot is reclaimed
  // immediately, not at the next accept. Under conns_m_ so the close
  // cannot race request_stop()'s shutdown sweep.
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    conn.fd.close();
    conn.done.store(true, std::memory_order_release);
  }
  conns_cv_.notify_all();
}

bool Server::handle_frame(util::Fd& fd, const std::string& payload) {
  WireReader r(payload);
  FrameType type;
  try {
    type = FrameType(r.u8());
  } catch (const WireError&) {
    send_frame(fd, error_payload(ErrorCode::BadFrame, "empty frame"),
               options_.io_timeout_ms);
    return true;
  }

  try {
    switch (type) {
      case FrameType::Submit: {
        const std::string exp_id = r.str();
        const std::uint32_t version = r.u32();
        const std::uint64_t seed = r.u64();
        const std::uint32_t chunk = r.u32();
        const std::uint32_t threads = r.u32();
        const std::int32_t priority = r.i32();
        const bool has_space = r.u8() != 0;
        sweep::ParamSpace space;
        if (has_space) space = r.space();
        if (r.remaining() != 0) throw WireError("trailing bytes in Submit");

        const sweep::RowExperiment* exp = registry_.find(exp_id);
        if (exp == nullptr || (version != 0 && version != exp->version)) {
          send_frame(fd, error_payload(ErrorCode::UnknownExperiment,
                                       "no experiment '" + exp_id +
                                           "' at version " +
                                           std::to_string(version)),
                     options_.io_timeout_ms);
          return true;
        }
        if (!has_space) {
          if (!exp->default_space) {
            send_frame(fd, error_payload(ErrorCode::Internal,
                                         "experiment '" + exp_id +
                                             "' has no default space"),
                       options_.io_timeout_ms);
            return true;
          }
          try {
            space = exp->default_space();
          } catch (const std::exception& e) {
            send_frame(fd, error_payload(ErrorCode::Internal, e.what()),
                       options_.io_timeout_ms);
            return true;
          }
        }
        if (stopping_.load(std::memory_order_relaxed)) {
          send_frame(fd, error_payload(ErrorCode::ShuttingDown,
                                       "server is shutting down"),
                     options_.io_timeout_ms);
          return true;
        }

        auto job = std::make_shared<Job>();
        job->priority = priority;
        job->exp = exp;
        job->space = std::move(space);
        job->opts.seed = seed;
        job->opts.chunk_size = chunk != 0 ? chunk : options_.chunk_size;
        job->opts.threads = threads != 0 ? threads : options_.threads;
        job->opts.stripe_chunks = options_.stripe_chunks;
        {
          std::lock_guard<std::mutex> lk(jobs_m_);
          job->id = next_job_id_++;
          jobs_.emplace(job->id, job);
        }
        if (!queue_.push(job->id, priority)) {
          // The push raced queue_.close(): make sure the job cannot sit
          // Queued forever.
          job->cancel.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lk(job->m);
          if (job->state == JobState::Queued) job->state = JobState::Cancelled;
          job->cv.notify_all();
        }
        WireWriter w;
        w.u8(std::uint8_t(FrameType::Submitted));
        w.u64(job->id);
        send_frame(fd, w.take(), options_.io_timeout_ms);
        return true;
      }

      case FrameType::Status:
      case FrameType::Cancel: {
        const std::uint64_t id = r.u64();
        if (r.remaining() != 0) throw WireError("trailing bytes");
        const auto job = find_job(id);
        if (!job) {
          send_frame(fd, error_payload(ErrorCode::UnknownJob,
                                       "no job " + std::to_string(id)),
                     options_.io_timeout_ms);
          return true;
        }
        JobStatus status;
        {
          if (type == FrameType::Cancel) {
            job->cancel.store(true, std::memory_order_relaxed);
          }
          std::lock_guard<std::mutex> lk(job->m);
          if (type == FrameType::Cancel && job->state == JobState::Queued) {
            job->state = JobState::Cancelled;
            job->cv.notify_all();
          }
          status = snapshot_locked(*job);
        }
        WireWriter w;
        w.u8(std::uint8_t(FrameType::StatusOk));
        write_status_body(w, status);
        send_frame(fd, w.take(), options_.io_timeout_ms);
        return true;
      }

      case FrameType::Fetch: {
        const std::uint64_t id = r.u64();
        if (r.remaining() != 0) throw WireError("trailing bytes in Fetch");
        const auto job = find_job(id);
        if (!job) {
          send_frame(fd, error_payload(ErrorCode::UnknownJob,
                                       "no job " + std::to_string(id)),
                     options_.io_timeout_ms);
          return true;
        }
        stream_fetch(fd, *job);
        return true;
      }

      case FrameType::ListExperiments: {
        if (r.remaining() != 0) throw WireError("trailing bytes");
        WireWriter w;
        w.u8(std::uint8_t(FrameType::ExperimentsOk));
        const auto& exps = registry_.all();
        w.u32(std::uint32_t(exps.size()));
        for (const auto& exp : exps) {
          w.str(exp.id);
          w.u32(exp.version);
          w.str(exp.description);
          std::uint64_t space_size = 0;
          if (exp.default_space) {
            try {
              space_size = exp.default_space().size();
            } catch (const std::exception&) {
              space_size = 0; // listing stays best-effort
            }
          }
          w.u64(space_size);
          w.u32(std::uint32_t(exp.columns.size()));
          for (const auto& col : exp.columns) w.str(col);
        }
        send_frame(fd, w.take(), options_.io_timeout_ms);
        return true;
      }

      case FrameType::Shutdown: {
        WireWriter w;
        w.u8(std::uint8_t(FrameType::ShutdownOk));
        send_frame(fd, w.take(), options_.io_timeout_ms);
        request_stop();
        return false;
      }

      default:
        send_frame(fd, error_payload(ErrorCode::BadFrame,
                                     "unexpected frame type " +
                                         std::to_string(int(type))),
                   options_.io_timeout_ms);
        return true;
    }
  } catch (const WireError& e) {
    send_frame(fd, error_payload(ErrorCode::BadFrame, e.what()),
               options_.io_timeout_ms);
    return true;
  }
}

void Server::stream_fetch(util::Fd& fd, Job& job) {
  {
    WireWriter w;
    w.u8(std::uint8_t(FrameType::TableBegin));
    w.u64(job.id);
    w.u32(std::uint32_t(job.exp->columns.size()));
    for (const auto& col : job.exp->columns) w.str(col);
    send_frame(fd, w.take(), options_.io_timeout_ms);
  }

  std::size_t sent = 0;
  std::vector<std::vector<sweep::Value>> batch;
  while (true) {
    bool terminal = false;
    JobStatus final_status;
    {
      std::unique_lock<std::mutex> lk(job.m);
      job.cv.wait(lk, [&] {
        return job.rows.size() > sent || is_terminal(job.state);
      });
      batch.assign(job.rows.begin() + std::ptrdiff_t(sent), job.rows.end());
      terminal = is_terminal(job.state);
      if (terminal) final_status = snapshot_locked(job);
    }
    // Stream outside the job lock: a slow client must not stall the
    // executor's stripe hand-off.
    for (const auto& row : batch) {
      WireWriter w;
      w.u8(std::uint8_t(FrameType::Row));
      w.u32(std::uint32_t(row.size()));
      for (const auto& cell : row) w.value(cell);
      send_frame(fd, w.take(), options_.io_timeout_ms);
    }
    sent += batch.size();
    if (terminal) {
      WireWriter w;
      w.u8(std::uint8_t(FrameType::TableEnd));
      write_status_body(w, final_status);
      send_frame(fd, w.take(), options_.io_timeout_ms);
      return;
    }
  }
}

} // namespace mss::server
