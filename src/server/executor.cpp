#include "server/executor.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/parallel.hpp"

namespace mss::server {

StripedRun::StripedRun(const sweep::RowExperiment& exp,
                       const sweep::ParamSpace& space, const ExecOptions& opt,
                       ResultCache* cache)
    : exp_(exp), space_(space), opt_(opt), cache_(cache) {
  n_ = space_.size();
  chunk_ = opt_.chunk_size == 0 ? 1 : opt_.chunk_size;
  stripe_ = chunk_ * (opt_.stripe_chunks == 0 ? 1 : opt_.stripe_chunks);
  stats_.points = n_;
  rows_.resize(n_);
  if (n_ == 0) return;

  // Identical RNG keying to sweep::Runner: substream per chunk, fork per
  // in-chunk offset.
  util::Rng base(opt_.seed);
  streams_ = base.jump_substreams(util::ThreadPool::chunk_count(n_, chunk_));

  // First-occurrence scan (serial, no evaluation) — memo semantics.
  std::unordered_map<std::string, std::size_t> first_of;
  owner_.resize(n_);
  key_of_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::string k = space_.at(i).key();
    const auto [it, inserted] = first_of.try_emplace(k, i);
    owner_[i] = it->second;
    if (inserted) key_of_[i] = std::move(k);
  }
}

void StripedRun::step() {
  if (finished()) return;
  const std::size_t begin = next_;
  const std::size_t end = std::min(n_, begin + stripe_);

  pending_.clear();
  for (std::size_t i = begin; i < end; ++i) {
    if (owner_[i] != i) continue; // duplicate: copied below
    if (cache_) {
      const std::string ck =
          cache_key(exp_.id, exp_.version, opt_.seed, key_of_[i]);
      if (auto hit = cache_->lookup(ck)) {
        rows_[i] = std::move(*hit);
        ++stats_.cache_hits;
        continue;
      }
    }
    pending_.push_back(i);
  }

  // Evaluate the stripe's misses in parallel. The RNG of index i is a
  // pure function of (seed, chunk, i) — never of which indices happen to
  // be cached or of which other jobs' stripes ran in between — so warm,
  // cold and time-sliced runs all draw identically.
  util::ThreadPool::run_with(
      opt_.threads, pending_.size(), 1,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k) {
          const std::size_t i = pending_[k];
          util::Rng rng =
              streams_[i / chunk_].fork(std::uint64_t(i % chunk_));
          std::vector<sweep::Value> row = exp_.evaluate(space_.at(i), rng);
          if (row.size() != exp_.columns.size()) {
            throw std::logic_error(
                "RowExperiment '" + exp_.id + "' produced " +
                std::to_string(row.size()) + " cells for " +
                std::to_string(exp_.columns.size()) + " columns");
          }
          rows_[i] = std::move(row);
        }
      });
  stats_.evaluated += pending_.size();

  // Append to the cache serially in index order: the file layout is then
  // a deterministic function of the job, not of thread scheduling.
  if (cache_) {
    for (const std::size_t i : pending_) {
      cache_->insert(cache_key(exp_.id, exp_.version, opt_.seed, key_of_[i]),
                     rows_[i]);
    }
  }

  for (std::size_t i = begin; i < end; ++i) {
    if (owner_[i] != i) {
      rows_[i] = rows_[owner_[i]];
      ++stats_.memo_hits;
    }
  }
  next_ = end;
}

ExecOutcome run_cached(const sweep::RowExperiment& exp,
                       const sweep::ParamSpace& space, const ExecOptions& opt,
                       ResultCache* cache, const std::atomic<bool>* cancel,
                       const StripeFn& on_stripe, sweep::RunStats* stats) {
  StripedRun run(exp, space, opt, cache);
  if (run.finished()) { // empty space: report once, done
    if (on_stripe) on_stripe(run.stats(), run.rows(), 0);
    if (stats) *stats = run.stats();
    return ExecOutcome::Done;
  }
  while (!run.finished()) {
    if (cancel && cancel->load(std::memory_order_relaxed)) {
      if (stats) *stats = run.stats();
      return ExecOutcome::Cancelled;
    }
    run.step();
    if (on_stripe) on_stripe(run.stats(), run.rows(), run.done_end());
  }
  if (stats) *stats = run.stats();
  return ExecOutcome::Done;
}

} // namespace mss::server
