#include "server/executor.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mss::server {

ExecOutcome run_cached(const sweep::RowExperiment& exp,
                       const sweep::ParamSpace& space, const ExecOptions& opt,
                       ResultCache* cache, const std::atomic<bool>* cancel,
                       const StripeFn& on_stripe, sweep::RunStats* stats) {
  const std::size_t n = space.size();
  const std::size_t chunk = opt.chunk_size == 0 ? 1 : opt.chunk_size;
  const std::size_t stripe =
      chunk * (opt.stripe_chunks == 0 ? 1 : opt.stripe_chunks);

  sweep::RunStats st;
  st.points = n;
  std::vector<std::vector<sweep::Value>> rows(n);
  if (n == 0) {
    if (on_stripe) on_stripe(st, rows, 0);
    if (stats) *stats = st;
    return ExecOutcome::Done;
  }

  // Identical RNG keying to sweep::Runner: substream per chunk, fork per
  // in-chunk offset.
  util::Rng base(opt.seed);
  const auto streams =
      base.jump_substreams(util::ThreadPool::chunk_count(n, chunk));

  // First-occurrence scan (serial, no evaluation) — memo semantics.
  std::unordered_map<std::string, std::size_t> first_of;
  std::vector<std::size_t> owner(n);
  std::vector<std::string> key_of(n); // point keys of first occurrences
  for (std::size_t i = 0; i < n; ++i) {
    std::string k = space.at(i).key();
    const auto [it, inserted] = first_of.try_emplace(k, i);
    owner[i] = it->second;
    if (inserted) key_of[i] = std::move(k);
  }

  std::vector<std::size_t> pending; // first occurrences missing from cache
  for (std::size_t begin = 0; begin < n; begin += stripe) {
    if (cancel && cancel->load(std::memory_order_relaxed)) {
      if (stats) *stats = st;
      return ExecOutcome::Cancelled;
    }
    const std::size_t end = std::min(n, begin + stripe);

    pending.clear();
    for (std::size_t i = begin; i < end; ++i) {
      if (owner[i] != i) continue; // duplicate: copied below
      if (cache) {
        const std::string ck =
            cache_key(exp.id, exp.version, opt.seed, key_of[i]);
        if (auto hit = cache->lookup(ck)) {
          rows[i] = std::move(*hit);
          ++st.cache_hits;
          continue;
        }
      }
      pending.push_back(i);
    }

    // Evaluate the stripe's misses in parallel. The RNG of index i is a
    // pure function of (seed, chunk, i) — never of which indices happen to
    // be cached — so warm and cold runs draw identically.
    util::ThreadPool::run_with(
        opt.threads, pending.size(), 1,
        [&](std::size_t, std::size_t b, std::size_t e) {
          for (std::size_t k = b; k < e; ++k) {
            const std::size_t i = pending[k];
            util::Rng rng = streams[i / chunk].fork(std::uint64_t(i % chunk));
            std::vector<sweep::Value> row = exp.evaluate(space.at(i), rng);
            if (row.size() != exp.columns.size()) {
              throw std::logic_error(
                  "RowExperiment '" + exp.id + "' produced " +
                  std::to_string(row.size()) + " cells for " +
                  std::to_string(exp.columns.size()) + " columns");
            }
            rows[i] = std::move(row);
          }
        });
    st.evaluated += pending.size();

    // Append to the cache serially in index order: the file layout is then
    // a deterministic function of the job, not of thread scheduling.
    if (cache) {
      for (const std::size_t i : pending) {
        cache->insert(cache_key(exp.id, exp.version, opt.seed, key_of[i]),
                      rows[i]);
      }
    }

    for (std::size_t i = begin; i < end; ++i) {
      if (owner[i] != i) {
        rows[i] = rows[owner[i]];
        ++st.memo_hits;
      }
    }
    if (on_stripe) on_stripe(st, rows, end);
  }

  if (stats) *stats = st;
  return ExecOutcome::Done;
}

} // namespace mss::server
