#include "server/client.hpp"

namespace mss::server {

namespace {

/// Decodes a reply payload's type byte; converts Error frames into throws.
FrameType reply_type(WireReader& r) {
  const auto type = FrameType(r.u8());
  if (type == FrameType::Error) {
    const auto code = ErrorCode(r.u16());
    throw ServerError(code, r.str());
  }
  return type;
}

[[noreturn]] void unexpected(FrameType type) {
  throw WireError("unexpected reply frame type " +
                  std::to_string(int(type)));
}

} // namespace

Client::Client(util::Fd fd) : fd_(std::move(fd)) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Hello));
  w.u32(kProtocolVersion);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::HelloOk) unexpected(FrameType::HelloOk);
  (void)r.u32(); // server's protocol version (== ours, it accepted)
  server_id_ = r.str();
}

Client::Client(const std::string& socket_path)
    : Client(util::unix_connect(socket_path)) {}

Client Client::connect_tcp(const std::string& host_port) {
  return Client(util::tcp_connect(util::parse_host_port(host_port)));
}

std::string Client::roundtrip(const std::string& payload) {
  send_frame(fd_, payload);
  auto reply = recv_frame(fd_);
  if (!reply) throw WireError("server closed the connection mid-request");
  return std::move(*reply);
}

JobStatus Client::parse_status_body(WireReader& r) {
  JobStatus s;
  s.id = r.u64();
  s.state = JobState(r.u8());
  s.total = r.u64();
  s.rows_done = r.u64();
  s.evaluated = r.u64();
  s.cache_hits = r.u64();
  s.memo_hits = r.u64();
  s.slices = r.u64();
  s.error = r.str();
  return s;
}

std::vector<ExperimentInfo> Client::experiments() {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::ListExperiments));
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::ExperimentsOk) {
    unexpected(FrameType::ExperimentsOk);
  }
  std::vector<ExperimentInfo> out(r.u32());
  for (auto& info : out) {
    info.id = r.str();
    info.version = r.u32();
    info.description = r.str();
    info.default_space_size = r.u64();
    info.columns.resize(r.u32());
    for (auto& col : info.columns) col = r.str();
  }
  return out;
}

std::uint64_t Client::submit(const std::string& experiment_id,
                             const SubmitOptions& options) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Submit));
  w.str(experiment_id);
  w.u32(options.experiment_version);
  w.u64(options.seed);
  w.u32(options.chunk_size);
  w.u32(options.threads);
  w.i32(options.priority);
  w.u8(options.space.has_value() ? 1 : 0);
  if (options.space) w.space(*options.space);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::Submitted) unexpected(FrameType::Submitted);
  return r.u64();
}

JobStatus Client::status(std::uint64_t job_id) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Status));
  w.u64(job_id);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::StatusOk) unexpected(FrameType::StatusOk);
  return parse_status_body(r);
}

JobStatus Client::cancel(std::uint64_t job_id) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Cancel));
  w.u64(job_id);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::StatusOk) unexpected(FrameType::StatusOk);
  return parse_status_body(r);
}

FetchResult Client::fetch(
    std::uint64_t job_id,
    const std::function<void(const std::vector<sweep::Value>&)>& on_row) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Fetch));
  w.u64(job_id);
  const std::string begin = roundtrip(w.take());

  std::vector<std::string> columns;
  {
    WireReader r(begin);
    if (reply_type(r) != FrameType::TableBegin) {
      unexpected(FrameType::TableBegin);
    }
    (void)r.u64(); // job id (echoed)
    columns.resize(r.u32());
    for (auto& col : columns) col = r.str();
  }

  FetchResult result{sweep::ResultTable(columns), {}};
  while (true) {
    auto frame = recv_frame(fd_);
    if (!frame) throw WireError("server closed the connection mid-fetch");
    WireReader r(*frame);
    const FrameType type = reply_type(r);
    if (type == FrameType::Row) {
      std::vector<sweep::Value> row(r.u32());
      for (auto& cell : row) cell = r.value();
      if (on_row) on_row(row);
      result.table.add_row(std::move(row));
    } else if (type == FrameType::TableEnd) {
      result.status = parse_status_body(r);
      return result;
    } else {
      unexpected(type);
    }
  }
}

void Client::shutdown_server() {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Shutdown));
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::ShutdownOk) unexpected(FrameType::ShutdownOk);
}

} // namespace mss::server
