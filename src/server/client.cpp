#include "server/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <system_error>
#include <thread>

namespace mss::server {

namespace {

/// Decodes a reply payload's type byte; converts Error frames into throws.
FrameType reply_type(WireReader& r) {
  const auto type = FrameType(r.u8());
  if (type == FrameType::Error) {
    const auto code = ErrorCode(r.u16());
    throw ServerError(code, r.str());
  }
  return type;
}

[[noreturn]] void unexpected(FrameType type) {
  throw WireError("unexpected reply frame type " +
                  std::to_string(int(type)));
}

} // namespace

Client::Client(util::Fd fd, const ClientOptions& options)
    : fd_(std::move(fd)), options_(options) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Hello));
  w.u32(kProtocolVersion);
  std::string reply;
  try {
    reply = roundtrip(w.take());
  } catch (const std::system_error& e) {
    // A refusing server (Error{Busy}) replies and closes without ever
    // reading our Hello, so the handshake *send* can fail with
    // EPIPE/ECONNRESET while the typed refusal already sits in our
    // receive buffer. Drain it so callers get the ServerError (which
    // retry classification understands), not the transport symptom.
    if (e.code().value() != EPIPE && e.code().value() != ECONNRESET) throw;
    try {
      if (auto pending = recv_frame(fd_, options_.io_timeout_ms)) {
        reply = std::move(*pending);
      }
    } catch (...) {
    }
    if (reply.empty()) throw; // nothing buffered: the transport error stands
  }
  WireReader r(reply);
  if (reply_type(r) != FrameType::HelloOk) unexpected(FrameType::HelloOk);
  (void)r.u32(); // server's protocol version (== ours, it accepted)
  server_id_ = r.str();
}

Client::Client(const std::string& socket_path, const ClientOptions& options)
    : Client(util::unix_connect(socket_path, options.connect_timeout_ms),
             options) {}

Client Client::connect_tcp(const std::string& host_port,
                           const ClientOptions& options) {
  return Client(util::tcp_connect(util::parse_host_port(host_port),
                                  options.connect_timeout_ms),
                options);
}

std::string Client::roundtrip(const std::string& payload) {
  send_frame(fd_, payload, options_.io_timeout_ms);
  auto reply = recv_frame(fd_, options_.io_timeout_ms);
  if (!reply) throw WireError("server closed the connection mid-request");
  return std::move(*reply);
}

JobStatus Client::parse_status_body(WireReader& r) {
  JobStatus s;
  s.id = r.u64();
  s.state = JobState(r.u8());
  s.total = r.u64();
  s.rows_done = r.u64();
  s.evaluated = r.u64();
  s.cache_hits = r.u64();
  s.memo_hits = r.u64();
  s.slices = r.u64();
  s.error = r.str();
  return s;
}

std::vector<ExperimentInfo> Client::experiments() {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::ListExperiments));
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::ExperimentsOk) {
    unexpected(FrameType::ExperimentsOk);
  }
  std::vector<ExperimentInfo> out(r.u32());
  for (auto& info : out) {
    info.id = r.str();
    info.version = r.u32();
    info.description = r.str();
    info.default_space_size = r.u64();
    info.columns.resize(r.u32());
    for (auto& col : info.columns) col = r.str();
  }
  return out;
}

std::uint64_t Client::submit(const std::string& experiment_id,
                             const SubmitOptions& options) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Submit));
  w.str(experiment_id);
  w.u32(options.experiment_version);
  w.u64(options.seed);
  w.u32(options.chunk_size);
  w.u32(options.threads);
  w.i32(options.priority);
  w.u8(options.space.has_value() ? 1 : 0);
  if (options.space) w.space(*options.space);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::Submitted) unexpected(FrameType::Submitted);
  return r.u64();
}

JobStatus Client::status(std::uint64_t job_id) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Status));
  w.u64(job_id);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::StatusOk) unexpected(FrameType::StatusOk);
  return parse_status_body(r);
}

JobStatus Client::cancel(std::uint64_t job_id) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Cancel));
  w.u64(job_id);
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::StatusOk) unexpected(FrameType::StatusOk);
  return parse_status_body(r);
}

FetchResult Client::fetch(
    std::uint64_t job_id,
    const std::function<void(const std::vector<sweep::Value>&)>& on_row) {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Fetch));
  w.u64(job_id);
  const std::string begin = roundtrip(w.take());

  std::vector<std::string> columns;
  {
    WireReader r(begin);
    if (reply_type(r) != FrameType::TableBegin) {
      unexpected(FrameType::TableBegin);
    }
    (void)r.u64(); // job id (echoed)
    columns.resize(r.u32());
    for (auto& col : columns) col = r.str();
  }

  FetchResult result{sweep::ResultTable(columns), {}};
  while (true) {
    auto frame = recv_frame(fd_, options_.io_timeout_ms);
    if (!frame) throw WireError("server closed the connection mid-fetch");
    WireReader r(*frame);
    const FrameType type = reply_type(r);
    if (type == FrameType::Row) {
      std::vector<sweep::Value> row(r.u32());
      for (auto& cell : row) cell = r.value();
      if (on_row) on_row(row);
      result.table.add_row(std::move(row));
    } else if (type == FrameType::TableEnd) {
      result.status = parse_status_body(r);
      return result;
    } else {
      unexpected(type);
    }
  }
}

void Client::shutdown_server() {
  WireWriter w;
  w.u8(std::uint8_t(FrameType::Shutdown));
  const std::string reply = roundtrip(w.take());
  WireReader r(reply);
  if (reply_type(r) != FrameType::ShutdownOk) unexpected(FrameType::ShutdownOk);
}

// --- resilience layer --------------------------------------------------------

namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Client connect_once(const Endpoint& where, const ClientOptions& options) {
  if (!where.socket_path.empty()) return Client(where.socket_path, options);
  return Client::connect_tcp(where.host_port, options);
}

/// One shared backoff loop: runs `op` up to retry.attempts times, sleeping
/// backoff+jitter between tries. Deterministic jitter (seeded splitmix64)
/// in [0, backoff/2) — decorrelates a thundering herd of clients without
/// making test runs flaky.
template <typename Op>
auto with_retry(const RetryOptions& retry, Op&& op) {
  const int attempts = retry.attempts > 0 ? retry.attempts : 1;
  std::uint64_t jitter_state = retry.jitter_seed;
  double backoff = double(retry.initial_backoff_ms);
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const std::exception& e) {
      if (attempt >= attempts || !retryable_error(e)) throw;
      int sleep_ms = int(backoff);
      if (sleep_ms > 0) {
        sleep_ms += int(splitmix64(jitter_state) % std::uint64_t(sleep_ms / 2 + 1));
      }
      if (retry.on_retry) retry.on_retry(attempt, e.what(), sleep_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff = std::min(backoff * retry.backoff_factor,
                         double(retry.max_backoff_ms));
    }
  }
}

} // namespace

bool retryable_error(const std::exception& e) {
  if (const auto* se = dynamic_cast<const ServerError*>(&e)) {
    return se->code() == ErrorCode::Busy ||
           se->code() == ErrorCode::ShuttingDown;
  }
  // ServerError derives from runtime_error, WireError too — order matters:
  // ServerError was handled above, so a WireError here is a genuine
  // protocol tear-down (EOF mid-reply after a server death), retryable.
  if (dynamic_cast<const WireError*>(&e) != nullptr) return true;
  return dynamic_cast<const std::system_error*>(&e) != nullptr;
}

Client connect_with_retry(const Endpoint& where, const ClientOptions& options,
                          const RetryOptions& retry) {
  return with_retry(retry, [&] { return connect_once(where, options); });
}

FetchResult run_with_retry(
    const Endpoint& where, const std::string& experiment_id,
    const SubmitOptions& submit, const ClientOptions& options,
    const RetryOptions& retry,
    const std::function<void(const std::vector<sweep::Value>&)>& on_row) {
  // The whole attempt — connect, submit, fetch — retries as a unit: a
  // fresh connection gets a fresh job id, but the server's first-write-
  // wins cache makes the resubmission resume from every already-computed
  // row, so completed work is never repeated and the final table is
  // bit-identical whichever attempt finishes.
  return with_retry(retry, [&] {
    Client client = connect_once(where, options);
    const std::uint64_t id = client.submit(experiment_id, submit);
    return client.fetch(id, on_row);
  });
}

} // namespace mss::server
