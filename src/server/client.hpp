// Client side of the mss-server protocol: a blocking, single-connection
// handle that speaks the wire format of src/server/wire.hpp over either
// transport — a unix socket path or a TCP "host:port" endpoint
// (connect_tcp); the protocol, handshake included, is byte-identical on
// both. One Client = one socket; requests are serialized on it (the
// protocol is strictly request/reply, with Fetch replies streamed).
// Server-reported failures surface as ServerError carrying the wire
// ErrorCode; transport failures surface as std::system_error.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "server/server.hpp" // JobState, JobStatus
#include "server/wire.hpp"
#include "sweep/param_space.hpp"
#include "sweep/result_table.hpp"
#include "util/socket.hpp"

namespace mss::server {

/// An Error frame, rethrown client-side.
class ServerError : public std::runtime_error {
 public:
  ServerError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One registry entry, as listed by the server.
struct ExperimentInfo {
  std::string id;
  std::uint32_t version = 1;
  std::string description;
  std::uint64_t default_space_size = 0;
  std::vector<std::string> columns;
};

/// Submit parameters (defaults mirror the wire's "server decides" zeros).
struct SubmitOptions {
  std::uint64_t seed = 0x5EEDC0DEull;
  std::uint32_t experiment_version = 0; ///< 0 = whatever is registered
  std::uint32_t chunk_size = 0;         ///< 0 = server default
  std::uint32_t threads = 0;            ///< 0 = server default
  std::int32_t priority = 0;            ///< higher runs first
  /// Space to sweep; nullopt = the experiment's default space.
  std::optional<sweep::ParamSpace> space;
};

/// A completed fetch: the streamed table plus the job's final status.
struct FetchResult {
  sweep::ResultTable table;
  JobStatus status;
};

class Client {
 public:
  /// Connects over the unix socket and performs the Hello handshake;
  /// throws ServerError on a version refusal, std::system_error when
  /// nobody listens.
  explicit Client(const std::string& socket_path);

  /// Adopts an already-connected transport fd and performs the handshake.
  explicit Client(util::Fd fd);

  /// Connects over TCP ("host:port", "[v6]:port"); same handshake and
  /// error contract as the unix constructor.
  [[nodiscard]] static Client connect_tcp(const std::string& host_port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// The server_id string from the handshake.
  [[nodiscard]] const std::string& server_id() const { return server_id_; }

  [[nodiscard]] std::vector<ExperimentInfo> experiments();

  /// Submits a job; returns its id immediately (execution is async).
  [[nodiscard]] std::uint64_t submit(const std::string& experiment_id,
                                     const SubmitOptions& options = {});

  [[nodiscard]] JobStatus status(std::uint64_t job_id);

  /// Requests cancellation (cooperative — the job may still finish its
  /// current stripe) and returns the status at that instant.
  JobStatus cancel(std::uint64_t job_id);

  /// Streams the job's rows (blocking until the job reaches a terminal
  /// state). `on_row` (optional) observes each row as it arrives —
  /// incremental consumption; the returned table always holds all rows.
  [[nodiscard]] FetchResult fetch(
      std::uint64_t job_id,
      const std::function<void(const std::vector<sweep::Value>&)>& on_row =
          nullptr);

  /// Asks the server to stop; returns once ShutdownOk arrives.
  void shutdown_server();

 private:
  /// Sends `payload`, receives one reply frame; throws ServerError on an
  /// Error frame, WireError on EOF mid-conversation.
  std::string roundtrip(const std::string& payload);
  static JobStatus parse_status_body(WireReader& r);

  util::Fd fd_;
  std::string server_id_;
};

} // namespace mss::server
