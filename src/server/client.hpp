// Client side of the mss-server protocol: a blocking, single-connection
// handle that speaks the wire format of src/server/wire.hpp over either
// transport — a unix socket path or a TCP "host:port" endpoint
// (connect_tcp); the protocol, handshake included, is byte-identical on
// both. One Client = one socket; requests are serialized on it (the
// protocol is strictly request/reply, with Fetch replies streamed).
// Server-reported failures surface as ServerError carrying the wire
// ErrorCode; transport failures surface as std::system_error.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "server/server.hpp" // JobState, JobStatus
#include "server/wire.hpp"
#include "sweep/param_space.hpp"
#include "sweep/result_table.hpp"
#include "util/socket.hpp"

namespace mss::server {

/// An Error frame, rethrown client-side.
class ServerError : public std::runtime_error {
 public:
  ServerError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One registry entry, as listed by the server.
struct ExperimentInfo {
  std::string id;
  std::uint32_t version = 1;
  std::string description;
  std::uint64_t default_space_size = 0;
  std::vector<std::string> columns;
};

/// Submit parameters (defaults mirror the wire's "server decides" zeros).
struct SubmitOptions {
  std::uint64_t seed = 0x5EEDC0DEull;
  std::uint32_t experiment_version = 0; ///< 0 = whatever is registered
  std::uint32_t chunk_size = 0;         ///< 0 = server default
  std::uint32_t threads = 0;            ///< 0 = server default
  std::int32_t priority = 0;            ///< higher runs first
  /// Space to sweep; nullopt = the experiment's default space.
  std::optional<sweep::ParamSpace> space;
};

/// A completed fetch: the streamed table plus the job's final status.
struct FetchResult {
  sweep::ResultTable table;
  JobStatus status;
};

/// Client-side deadlines. Zero = block forever (the pre-hardening
/// behaviour); the mss-client tool always sets both, so a dead daemon
/// fails fast instead of hanging the terminal.
struct ClientOptions {
  /// connect(2) deadline in ms (0 = blocking connect).
  int connect_timeout_ms = 0;
  /// Per-RPC idle deadline in ms (0 = none): an in-flight reply making no
  /// byte of progress for this long throws ETIMEDOUT. Idle, not total —
  /// a long fetch that keeps streaming rows never trips it.
  int io_timeout_ms = 0;
};

class Client {
 public:
  /// Connects over the unix socket and performs the Hello handshake;
  /// throws ServerError on a version refusal (or Error{Busy} when the
  /// server's connection cap is reached), std::system_error when nobody
  /// listens or a deadline expires.
  explicit Client(const std::string& socket_path,
                  const ClientOptions& options = {});

  /// Adopts an already-connected transport fd and performs the handshake.
  explicit Client(util::Fd fd, const ClientOptions& options = {});

  /// Connects over TCP ("host:port", "[v6]:port"); same handshake and
  /// error contract as the unix constructor.
  [[nodiscard]] static Client connect_tcp(const std::string& host_port,
                                          const ClientOptions& options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// The server_id string from the handshake.
  [[nodiscard]] const std::string& server_id() const { return server_id_; }

  [[nodiscard]] std::vector<ExperimentInfo> experiments();

  /// Submits a job; returns its id immediately (execution is async).
  [[nodiscard]] std::uint64_t submit(const std::string& experiment_id,
                                     const SubmitOptions& options = {});

  [[nodiscard]] JobStatus status(std::uint64_t job_id);

  /// Requests cancellation (cooperative — the job may still finish its
  /// current stripe) and returns the status at that instant.
  JobStatus cancel(std::uint64_t job_id);

  /// Streams the job's rows (blocking until the job reaches a terminal
  /// state). `on_row` (optional) observes each row as it arrives —
  /// incremental consumption; the returned table always holds all rows.
  [[nodiscard]] FetchResult fetch(
      std::uint64_t job_id,
      const std::function<void(const std::vector<sweep::Value>&)>& on_row =
          nullptr);

  /// Asks the server to stop; returns once ShutdownOk arrives.
  void shutdown_server();

 private:
  /// Sends `payload`, receives one reply frame; throws ServerError on an
  /// Error frame, WireError on EOF mid-conversation.
  std::string roundtrip(const std::string& payload);
  static JobStatus parse_status_body(WireReader& r);

  util::Fd fd_;
  ClientOptions options_;
  std::string server_id_;
};

// --- resilience layer --------------------------------------------------------
//
// Retrying a *whole* run (connect + submit + fetch) is safe because the
// server's persistent cache is first-write-wins: a resubmitted job serves
// every already-computed point from the cache bit-identically, so a retry
// resumes instead of recomputing, and the final table is the same bytes
// whichever attempt completes it.

/// Where a resilient client connects: a unix socket path or a TCP
/// "host:port" endpoint.
struct Endpoint {
  std::string socket_path; ///< used when non-empty
  std::string host_port;   ///< TCP endpoint otherwise
  [[nodiscard]] static Endpoint unix_socket(std::string path) {
    return Endpoint{std::move(path), {}};
  }
  [[nodiscard]] static Endpoint tcp(std::string host_port) {
    return Endpoint{{}, std::move(host_port)};
  }
};

/// Exponential-backoff-with-jitter policy. Deterministic: the jitter
/// stream is seeded, so tests replay the exact sleep sequence.
struct RetryOptions {
  int attempts = 5;            ///< total tries (1 = no retry)
  int initial_backoff_ms = 50; ///< first sleep
  double backoff_factor = 2.0; ///< growth per retry
  int max_backoff_ms = 2'000;  ///< backoff ceiling (before jitter)
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;
  /// Observer for each retry: (attempt just failed [1-based], reason,
  /// upcoming sleep in ms). Tests and the CLI's verbose mode hook this.
  std::function<void(int attempt, const std::string& why, int sleep_ms)>
      on_retry;
};

/// True for failures worth retrying: transport errors (std::system_error
/// — refused/reset/timeout), protocol tear-downs (WireError — EOF
/// mid-reply), and the two explicitly-retryable server refusals
/// (Error{Busy}, Error{ShuttingDown}). Everything else — BadVersion,
/// UnknownExperiment, Internal… — would fail identically on every retry.
[[nodiscard]] bool retryable_error(const std::exception& e);

/// Connects (unix or TCP per `where`) with deadlines and backoff-retries.
/// Throws the last attempt's error when every try fails.
[[nodiscard]] Client connect_with_retry(const Endpoint& where,
                                        const ClientOptions& options = {},
                                        const RetryOptions& retry = {});

/// The resilient one-shot: connect, submit, fetch — retried as a unit
/// with exponential backoff on any retryable failure, resuming from the
/// server's cache (see above). `on_row` may observe rows more than once
/// across attempts (each fetch restreams from row 0); the returned table
/// is the single successful attempt's, complete and in order.
[[nodiscard]] FetchResult run_with_retry(
    const Endpoint& where, const std::string& experiment_id,
    const SubmitOptions& submit = {}, const ClientOptions& options = {},
    const RetryOptions& retry = {},
    const std::function<void(const std::vector<sweep::Value>&)>& on_row =
        nullptr);

} // namespace mss::server
