#include "server/wire.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <system_error>

namespace mss::server {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

} // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- WireWriter --------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  u8(std::uint8_t(v));
  u8(std::uint8_t(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(std::uint8_t(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(std::uint8_t(v >> (8 * i)));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits); // raw IEEE bits: NaN payloads, -0.0
  u64(bits);                           // and denormals all round-trip
}

void WireWriter::str(const std::string& s) {
  u32(std::uint32_t(s.size()));
  buf_.append(s);
}

void WireWriter::value(const sweep::Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    u8(0);
    i64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    u8(1);
    f64(*d);
  } else {
    u8(2);
    str(std::get<std::string>(v));
  }
}

void WireWriter::space(const sweep::ParamSpace& s) {
  // The structural encoding mirrors ParamSpace::dimensions() one-to-one,
  // so the reader reconstructs an identical space through cross()/zip()
  // and every Point::key() decoded from it matches the sender's — the
  // identity the persistent cache requires.
  const auto& dims = s.dimensions();
  u32(std::uint32_t(dims.size()));
  for (const auto& group : dims) {
    u32(std::uint32_t(group.size()));
    for (const auto& axis : group) {
      str(axis.name());
      u64(axis.size());
      for (std::size_t i = 0; i < axis.size(); ++i) value(axis.at(i));
    }
  }
}

// --- WireReader --------------------------------------------------------------

const void* WireReader::need(std::size_t n) {
  if (buf_.size() - pos_ < n) {
    throw WireError("wire: truncated message (need " + std::to_string(n) +
                    " bytes, have " + std::to_string(buf_.size() - pos_) +
                    ")");
  }
  const void* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::u8() {
  return *static_cast<const unsigned char*>(need(1));
}

std::uint16_t WireReader::u16() {
  const auto* p = static_cast<const unsigned char*>(need(2));
  return std::uint16_t(p[0] | (std::uint16_t(p[1]) << 8));
}

std::uint32_t WireReader::u32() {
  const auto* p = static_cast<const unsigned char*>(need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  const auto* p = static_cast<const unsigned char*>(need(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (n > kMaxFrameBytes) throw WireError("wire: string length too large");
  const auto* p = static_cast<const char*>(need(n));
  return std::string(p, n);
}

sweep::Value WireReader::value() {
  switch (u8()) {
    case 0: return sweep::Value(i64());
    case 1: return sweep::Value(f64());
    case 2: return sweep::Value(str());
    default: throw WireError("wire: bad value tag");
  }
}

sweep::ParamSpace WireReader::space() {
  const std::uint32_t n_dims = u32();
  if (n_dims > 4096) throw WireError("wire: absurd dimension count");
  sweep::ParamSpace out;
  for (std::uint32_t d = 0; d < n_dims; ++d) {
    const std::uint32_t n_axes = u32();
    if (n_axes == 0 || n_axes > 4096) {
      throw WireError("wire: bad axis count in dimension");
    }
    std::vector<sweep::Axis> axes;
    axes.reserve(n_axes);
    for (std::uint32_t a = 0; a < n_axes; ++a) {
      std::string name = str();
      const std::uint64_t n_values = u64();
      if (n_values > (1u << 24)) throw WireError("wire: axis too long");
      std::vector<sweep::Value> vals;
      // Reserve only what the remaining payload could actually encode
      // (every value is >= 5 bytes): a hostile length field must not be
      // able to commit hundreds of MB before truncation is detected.
      vals.reserve(std::size_t(
          std::min<std::uint64_t>(n_values, remaining() / 5 + 1)));
      for (std::uint64_t v = 0; v < n_values; ++v) vals.push_back(value());
      axes.push_back(sweep::Axis::values(std::move(name), std::move(vals)));
    }
    try {
      if (axes.size() == 1) {
        out.cross(std::move(axes.front()));
      } else {
        out.zip(std::move(axes));
      }
    } catch (const std::invalid_argument& e) {
      // duplicate axis names / zip length mismatch from a hostile encoder
      throw WireError(std::string("wire: invalid space: ") + e.what());
    }
  }
  return out;
}

// --- framing -----------------------------------------------------------------

void send_frame(const util::Fd& fd, const std::string& payload,
                int idle_timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("wire: frame payload too large");
  }
  char head[4];
  const auto len = std::uint32_t(payload.size());
  for (int i = 0; i < 4; ++i) head[i] = char(len >> (8 * i));
  // One send for the header keeps syscall count at 2/frame; the transport
  // is a stream socket, so splitting is semantically irrelevant.
  util::write_all(fd, head, sizeof head, idle_timeout_ms);
  util::write_all(fd, payload.data(), payload.size(), idle_timeout_ms);
}

std::optional<std::string> recv_frame(const util::Fd& fd,
                                      int idle_timeout_ms) {
  unsigned char head[4];
  if (!util::read_exact(fd, head, sizeof head, idle_timeout_ms)) {
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t(head[i]) << (8 * i);
  if (len > kMaxFrameBytes) throw WireError("wire: oversized frame");
  std::string payload(len, '\0');
  if (len > 0 && !util::read_exact(fd, payload.data(), len, idle_timeout_ms)) {
    throw std::system_error(std::make_error_code(std::errc::connection_reset),
                            "recv_frame: EOF mid-frame");
  }
  return payload;
}

} // namespace mss::server
