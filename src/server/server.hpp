// The mss-server daemon: simulation-as-a-service over a local unix socket
// and (optionally) TCP.
//
// One process owns the thread pool, the experiment registry and the
// persistent result cache; clients submit serialized sweep jobs and stream
// rows back as they complete. Threading model:
//
//   accept threads       — one per transport (unix socket, optional TCP),
//                          blocking in accept(); one handler thread per
//                          connection, reaped as connections close
//   executor thread      — the scheduler: pops the highest-priority
//                          runnable job off a PriorityBlockingQueue, runs
//                          *one stripe* through StripedRun, re-enqueues it
//                          — round-robin time-slicing at stripe
//                          granularity, FIFO within a priority level, so
//                          concurrent jobs interleave and each streams
//                          rows incrementally while staying bit-identical
//                          to a solo run
//   connection handlers  — parse frames, mutate jobs only under the job
//                          mutex, block on the job cv to stream rows
//
// A job's lifecycle is Queued -> Running -> {Done, Cancelled, Failed}.
// Cancellation is cooperative at stripe boundaries; every completed row is
// already in the cache, so a cancelled (or SIGKILLed) job's work is never
// lost — resubmitting it resumes from the cache bit-identically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/cache.hpp"
#include "server/executor.hpp"
#include "server/registry.hpp"
#include "util/blocking_queue.hpp"
#include "util/socket.hpp"

namespace mss::server {

struct ServerOptions {
  std::string socket_path;
  /// TCP endpoint ("host:port", "[v6]:port", ":port" = loopback; port 0 =
  /// ephemeral). Empty = unix socket only. The protocol has no
  /// authentication: bind loopback unless the network is trusted.
  std::string listen_address;
  /// Persistent cache file; empty = in-memory only (no cross-run resume).
  std::string cache_path;
  /// Cache file size cap in bytes (0 = unlimited); see CacheOptions.
  std::size_t cache_max_bytes = 0;
  /// Compact the cache (drop duplicate records) before serving.
  bool compact_cache_on_start = false;
  /// Per-connection idle I/O timeout in ms (0 = none). A peer that makes
  /// no byte of progress for this long — a slow-loris half-frame, or a
  /// reader that stopped draining its fetch — is evicted; its handler
  /// thread and fd are reclaimed. Generous by default: only a genuinely
  /// wedged peer trips it.
  int io_timeout_ms = 120'000;
  /// Connection cap, enforced against *live* connections (finished
  /// handlers are reaped on exit, not just at the next accept). Excess
  /// clients get a typed Error{Busy} frame and a clean close. 0 = none.
  std::size_t max_conns = 256;
  /// Default thread policy for job execution (0 = shared global pool).
  std::size_t threads = 0;
  /// Default chunk_size when a Submit carries 0.
  std::size_t chunk_size = 1;
  /// Streaming/cancellation/scheduling quantum, in chunks.
  std::size_t stripe_chunks = 8;
  /// Reported in the HelloOk handshake.
  std::string server_id = "mss-server/1";
};

/// Wire representation of a job's state (StatusOk `state` byte).
enum class JobState : std::uint8_t {
  Queued = 0,
  Running = 1,
  Done = 2,
  Cancelled = 3,
  Failed = 4,
};

[[nodiscard]] const char* to_string(JobState s);
[[nodiscard]] inline bool is_terminal(JobState s) {
  return s == JobState::Done || s == JobState::Cancelled ||
         s == JobState::Failed;
}

/// Status snapshot (the StatusOk body).
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  std::uint64_t total = 0;      ///< points in the job's space
  std::uint64_t rows_done = 0;  ///< rows completed (streamable)
  std::uint64_t evaluated = 0;  ///< rows actually computed
  std::uint64_t cache_hits = 0; ///< rows served by the persistent cache
  std::uint64_t memo_hits = 0;  ///< rows copied from an in-job duplicate
  std::uint64_t slices = 0;     ///< scheduler time-slices (stripes) granted
  std::string error;            ///< what() when state == Failed
};

class Server {
 public:
  /// Binds the socket(s) and opens/replays the cache. Throws on any
  /// failing. No threads run until start().
  explicit Server(ServerOptions options, Registry registry = Registry::builtin());
  ~Server(); ///< request_stop() + wait()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept and executor threads.
  void start();
  /// Stops accepting, cancels every non-terminal job, unblocks all
  /// connection handlers. Idempotent, thread-safe, non-blocking.
  void request_stop();
  /// Joins every thread. Returns once the server is fully quiesced.
  void wait();

  /// True once a stop was requested (signal handler, Shutdown frame or
  /// request_stop()) — the daemon main loop's poll.
  [[nodiscard]] bool stopping() const {
    return stopping_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  /// Bound TCP endpoint ("host:port", ephemeral port resolved) — empty
  /// when no TCP transport was configured.
  [[nodiscard]] std::string tcp_address() const {
    return tcp_listener_ ? tcp_listener_->address() : std::string();
  }
  /// Bound TCP port (0 when no TCP transport was configured).
  [[nodiscard]] std::uint16_t tcp_port() const {
    return tcp_listener_ ? tcp_listener_->port() : 0;
  }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

  /// Connection-table entries (live handlers plus finished ones the
  /// reaper has not collected yet — the reaper runs on every handler
  /// exit, so this converges to the live count without any new accept).
  /// Observability for the fd-leak regression tests.
  [[nodiscard]] std::size_t connection_entries() const;
  /// Connections whose handler is still running — what max_conns gates.
  [[nodiscard]] std::size_t live_connections() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    int priority = 0;
    const sweep::RowExperiment* exp = nullptr; ///< into registry_ (stable)
    sweep::ParamSpace space;
    ExecOptions opts;
    std::atomic<bool> cancel{false};

    /// Striped execution state; created at the job's first slice, owned
    /// and advanced by the executor thread only, freed on terminal.
    std::unique_ptr<StripedRun> run;

    std::mutex m; ///< guards everything below
    std::condition_variable cv;
    JobState state = JobState::Queued;
    std::uint64_t slices = 0;
    std::vector<std::vector<sweep::Value>> rows;
    sweep::RunStats stats;
    std::string error;
  };

  /// One connection-table entry. The handler thread owns fd while it
  /// runs, closes it (under conns_m_) and flags done on exit; an accept
  /// thread later joins+erases done entries.
  struct Conn {
    util::Fd fd;
    std::thread th;
    std::atomic<bool> done{false};
  };

  void accept_loop(util::UnixListener& listener);
  void accept_loop_tcp(util::TcpListener& listener);
  void handle_accepted(util::Fd client);
  /// Joins and erases connection entries whose handlers have exited.
  void reap_finished_conns();
  /// Dedicated reap thread: woken by every handler exit (and a periodic
  /// tick), so finished handlers are collected promptly even on an idle
  /// daemon — max_conns is enforced against live connections, never
  /// against stale table entries.
  void reaper_loop();
  void executor_loop();
  void handle_connection(Conn& conn);
  /// One request frame -> zero or more reply frames. Returns false when
  /// the connection should end (shutdown request).
  bool handle_frame(util::Fd& fd, const std::string& payload);
  /// Runs one scheduling quantum (stripe) of the job. Returns true when
  /// the job should be re-enqueued (more stripes remain).
  bool run_slice(Job& job);
  /// Marks a non-terminal job Cancelled and releases its run state.
  void finish_cancelled(Job& job);
  void stream_fetch(util::Fd& fd, Job& job);

  [[nodiscard]] std::shared_ptr<Job> find_job(std::uint64_t id);
  [[nodiscard]] static JobStatus snapshot_locked(const Job& job);

  ServerOptions options_;
  Registry registry_;
  ResultCache cache_;
  util::UnixListener listener_;
  std::optional<util::TcpListener> tcp_listener_;

  util::PriorityBlockingQueue<std::uint64_t> queue_;
  std::mutex jobs_m_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread tcp_accept_thread_;
  std::thread executor_thread_;
  std::thread reaper_thread_;
  mutable std::mutex conns_m_;
  /// Wakes the reaper: signalled by every handler exit and request_stop().
  std::condition_variable conns_cv_;
  std::list<Conn> conns_;
};

} // namespace mss::server
