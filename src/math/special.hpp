// Special functions for the analytic rare-event (deep-tail) layer.
//
// The write-error-rate and retention analyses need tail probabilities far
// below what brute-force Monte-Carlo can reach (1e-9 .. 1e-15 and beyond):
// closed-form switching-probability expressions are erfc/inverse-normal
// shaped, and array-level retention tails are Poisson/incomplete-gamma
// shaped. This module owns those primitives — like util::Rng owns the
// normal transform — so every tail number is bit-reproducible across
// platforms and standard libraries, and so the deep tail has dedicated
// *scaled* and *log-domain* entry points (`erfcx`, `log_erfc`) that stay
// accurate long after the linear-domain functions underflow.
//
// Accuracy contract (details and derivations in src/math/README.md):
//  * erf/erfc: <= ~2e-15 relative error over the full double range; erfc
//    underflows to 0 for x > ~26.6 (use log_erfc/erfcx past that point);
//  * erfcx(x) = exp(x^2) erfc(x): finite and >= ~1e-15-accurate for every
//    x >= 0 (continued fraction for large x — the deep-tail WER path);
//  * gamma_p/gamma_q: regularized incomplete gamma, series/continued
//    fraction split at x = a + 1 (Numerical Recipes / cfit Math idiom);
//  * lgamma: Lanczos (g = 607/128, 15 terms), ~1e-14 relative;
//  * inv_normal: Acklam rational start + one Halley step against the
//    erfc-based CDF, |error| < 1e-12 for p in [1e-300, 1 - 1e-16].
#pragma once

namespace mss::math {

/// Error function erf(x) = (2/sqrt(pi)) Int_0^x exp(-t^2) dt.
[[nodiscard]] double erf(double x);

/// Complementary error function erfc(x) = 1 - erf(x). Computed directly
/// (never as 1 - erf), so the upper tail keeps full relative accuracy down
/// to the underflow edge (~x = 26.6).
[[nodiscard]] double erfc(double x);

/// Scaled complementary error function erfcx(x) = exp(x^2) erfc(x).
/// Never underflows for x >= 0 (asymptotically 1/(x sqrt(pi))) — the
/// factorization the deep-tail WER formula is evaluated through.
/// For x < 0 it grows like 2 exp(x^2) and overflows past x ~ -26.6.
[[nodiscard]] double erfcx(double x);

/// log(erfc(x)), finite for every representable x (log_erfc(1e154) is a
/// perfectly good ~-1e308): the log-domain tail entry point, evaluated as
/// -x^2 + log(erfcx(x)) on the right tail.
[[nodiscard]] double log_erfc(double x);

/// Natural log of the gamma function for x > 0 (throws std::domain_error
/// otherwise — the nonpositive axis is not needed by any caller and a
/// silent reflection would hide bugs).
[[nodiscard]] double lgamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// a > 0, x >= 0. P(a, 0) = 0, P(a, inf) = 1, monotone in x.
/// Poisson tail identity: P(X >= k) = gamma_p(k, lambda) for
/// X ~ Poisson(lambda) — the array-retention failure tail.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x), computed
/// directly by continued fraction for x > a + 1 so the upper tail keeps
/// relative accuracy (Q(0.5, x) = erfc(sqrt(x))).
[[nodiscard]] double gamma_q(double a, double x);

/// Inverse standard-normal CDF (the probit): x with Phi(x) = p, valid for
/// p in (0, 1) down to ~1e-300 — the quantile the closed-form
/// pulse-width-for-WER inversion and the estimator confidence bounds use.
/// Throws std::domain_error outside (0, 1).
[[nodiscard]] double inv_normal(double p);

} // namespace mss::math
