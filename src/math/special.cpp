#include "math/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mss::math {

namespace {

constexpr double kSqrtPi = 1.7724538509055160272981674833411;
constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kTiny = std::numeric_limits<double>::min();

// Lanczos approximation, g = 607/128, 15 coefficients (Boost/Godfrey set).
// Relative error ~1e-15 over the positive axis.
constexpr double kLanczosG = 607.0 / 128.0;
constexpr double kLanczos[15] = {
    0.99999999999999709182,     57.156235665862923517,
    -59.597960355475491248,     14.136097974741747174,
    -0.49191381609762019978,    3.3994649984811888699e-5,
    4.6523628927048575665e-5,   -9.8374475304879564677e-5,
    1.5808870322491248884e-4,   -2.1026444172410488319e-4,
    2.1743961811521264320e-4,   -1.6431810653676389022e-4,
    8.4418223983852743293e-5,   -2.6190838401581408670e-5,
    3.6899182659531622704e-6,
};

// Lower-incomplete-gamma series: P(a, x) = e^{-x + a ln x - lgamma(a)} *
// sum_{n>=0} x^n Gamma(a) / Gamma(a+1+n). Converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double term = 1.0 / a;
  double sum = term;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma(a));
}

// Upper-incomplete-gamma continued fraction (modified Lentz):
// Q(a, x) = e^{-x + a ln x - lgamma(a)} * 1/(x+1-a- 1(1-a)/(x+3-a- ...)).
// Converges fast for x > a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -double(i) * (double(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - lgamma(a)) * h;
}

// Laplace continued fraction for the scaled complementary error function:
// sqrt(pi) e^{x^2} erfc(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...)))),
// partial numerators a_i = i/2 against constant partial denominators x.
// Evaluated with modified Lentz; keeps full relative accuracy for large x,
// where the series/gamma split would first lose digits and then underflow.
double erfcx_cf(double x) {
  double f = x;
  double c = x;
  double d = 0.0;
  for (int i = 1; i <= 300; ++i) {
    const double an = 0.5 * double(i);
    d = x + an * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = x + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = c * d;
    f *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return 1.0 / (kSqrtPi * f);
}

// erf Maclaurin series: erf(x) = 2/sqrt(pi) sum (-1)^n x^{2n+1}/(n!(2n+1)).
// Used only for |x| < 0.5 where it converges in a handful of terms with no
// cancellation.
double erf_series(double x) {
  const double x2 = x * x;
  double term = x;
  double sum = x;
  for (int n = 1; n < 60; ++n) {
    term *= -x2 / double(n);
    const double contrib = term / double(2 * n + 1);
    sum += contrib;
    if (std::abs(contrib) < std::abs(sum) * kEps) break;
  }
  return 2.0 * sum / kSqrtPi;
}

} // namespace

double lgamma(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("math::lgamma: requires x > 0");
  }
  // Lanczos in the Gamma(z + 1) convention the Godfrey coefficients are
  // fitted for: with z = x - 1 and t = z + g + 1/2,
  //   Gamma(x) = sqrt(2 pi) t^{z + 1/2} e^{-t} A(z),
  //   A(z) = c0 + sum_{k=1}^{14} c_k / (z + k).
  const double z = x - 1.0;
  double acc = kLanczos[0];
  for (int k = 1; k < 15; ++k) acc += kLanczos[k] / (z + double(k));
  const double t = z + kLanczosG + 0.5;
  constexpr double kLogSqrt2Pi = 0.91893853320467274178032973640562;
  return kLogSqrt2Pi + (z + 0.5) * std::log(t) - t + std::log(acc);
}

double erf(double x) {
  if (std::isnan(x)) return x;
  const double ax = std::abs(x);
  if (ax < 0.5) return erf_series(x);
  // erf(|x|) = 1 - erfc(|x|); erfc keeps the accuracy burden, and for
  // ax >= 0.5 the subtraction loses no digits (erfc <= 0.48).
  const double e = erfc(ax);
  return x > 0.0 ? 1.0 - e : e - 1.0;
}

double erfc(double x) {
  if (std::isnan(x)) return x;
  if (x < 0.0) return 2.0 - erfc(-x);
  if (x < 0.5) return 1.0 - erf_series(x);
  if (x < 4.0) {
    // Mid range: regularized upper incomplete gamma, Q(1/2, x^2) — the
    // series/continued-fraction split of the cfit Math idiom.
    const double x2 = x * x;
    return x2 < 1.5 ? 1.0 - gamma_p_series(0.5, x2) : gamma_q_cf(0.5, x2);
  }
  // Right tail: scaled continued fraction times the Gaussian factor;
  // underflows to 0 past x ~ 26.6, where log_erfc/erfcx take over.
  return erfcx_cf(x) * std::exp(-x * x);
}

double erfcx(double x) {
  if (std::isnan(x)) return x;
  if (x >= 4.0) return erfcx_cf(x);
  // exp(x^2) stays comfortably finite below the continued-fraction cutoff
  // (e^16 ~ 8.9e6); erfc carries the accuracy.
  return std::exp(x * x) * erfc(x);
}

double log_erfc(double x) {
  if (x < 4.0) {
    // erfc is O(1) here (>= erfc(4) ~ 1.5e-8): plain log is exact enough.
    return std::log(erfc(x));
  }
  // Right tail: erfc = erfcx e^{-x^2} — the scaled path never underflows,
  // and -x*x is exact until x^2 overflows (x ~ 1.3e154).
  return -x * x + std::log(erfcx_cf(x));
}

double gamma_p(double a, double x) {
  if (!(a > 0.0) || !(x >= 0.0)) {
    throw std::domain_error("math::gamma_p: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0.0) || !(x >= 0.0)) {
    throw std::domain_error("math::gamma_q: requires a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

namespace {

// Acklam's rational approximation to the probit function (the inverse
// standard-normal CDF); absolute error < 1.15e-9 before refinement.
double acklam(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log1p(-p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

} // namespace

double inv_normal(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::domain_error("math::inv_normal: requires p in (0, 1)");
  }
  double x = acklam(p);
  // One Halley step against the erfc-based CDF. The residual is formed on
  // whichever tail keeps relative accuracy, so the refinement holds down
  // to p ~ 1e-300.
  constexpr double kSqrt2 = 1.4142135623730950488016887242097;
  const double cdf = 0.5 * erfc(-x / kSqrt2);
  const double sf = 0.5 * erfc(x / kSqrt2);
  const double e = p < 0.5 ? cdf - p : -(sf - (1.0 - p));
  const double pdf = std::exp(-0.5 * x * x) / (kSqrt2 * kSqrtPi);
  if (pdf > 0.0) {
    const double u = e / pdf;
    x = x - u / (1.0 + 0.5 * x * u);
  }
  return x;
}

} // namespace mss::math
