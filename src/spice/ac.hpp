// AC small-signal analysis: linearises the circuit at its DC operating
// point and solves the complex MNA system across a frequency sweep —
// needed for the analog MSS work (sensor read-out bandwidth, oscillator
// interface chains).
//
// Elements participate through Element-type dispatch inside the analyser
// (resistor/capacitor/inductor/sources/controlled/MOSFET/diode/MTJ); the
// MOSFET and diode contribute their small-signal conductances evaluated at
// the DC operating point. Independent sources are shorted/opened except
// voltage sources flagged with `set_ac` which inject the stimulus.
#pragma once

#include <complex>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/solver.hpp"

namespace mss::spice {

/// AC analysis configuration.
struct AcOptions {
  SolverKind solver = SolverKind::Auto;
  Ordering ordering = Ordering::Auto; ///< sparse column-ordering policy
  bool stamp_cache = true; ///< per-element stamp-slot caching (A/B knob)
  /// Sparse: Markowitz dynamic pivoting instead of the static-ordering
  /// left-looking factorization. The complex admittances move with omega,
  /// so every sweep point refactors in full anyway — dynamic pivoting
  /// trades the reusable symbolic structure for fill driven by the actual
  /// values.
  bool markowitz = false;
};

/// Frequency-response of one run.
class AcResult {
 public:
  /// Swept frequencies [Hz].
  [[nodiscard]] const std::vector<double>& frequencies() const {
    return freqs_;
  }
  /// Complex node voltage at sweep point k.
  [[nodiscard]] std::complex<double> v(const std::string& node,
                                       std::size_t k) const;
  /// Magnitude |v(node)| at sweep point k.
  [[nodiscard]] double magnitude(const std::string& node,
                                 std::size_t k) const;
  /// Magnitude in dB.
  [[nodiscard]] double magnitude_db(const std::string& node,
                                    std::size_t k) const;
  /// Phase [rad].
  [[nodiscard]] double phase(const std::string& node, std::size_t k) const;
  /// Whether every point solved.
  [[nodiscard]] bool converged() const { return converged_; }

 private:
  friend AcResult ac_analysis(Circuit&, const std::vector<double>&,
                              const AcOptions&);
  std::vector<double> freqs_;
  std::vector<std::vector<std::complex<double>>> samples_;
  std::unordered_map<std::string, std::size_t> node_index_;
  bool converged_ = true;
};

/// Logarithmically spaced frequency grid [f_lo, f_hi] with `per_decade`
/// points per decade.
[[nodiscard]] std::vector<double> log_sweep(double f_lo, double f_hi,
                                            int per_decade = 10);

/// Runs the AC analysis over `freqs`. Computes the DC operating point
/// first (throws std::runtime_error if it does not converge), then solves
/// the complex linearised system per frequency through the selected
/// linear-solver backend (Auto: dense below kSparseAutoThreshold unknowns,
/// sparse at array scale).
[[nodiscard]] AcResult ac_analysis(Circuit& circuit,
                                   const std::vector<double>& freqs,
                                   const AcOptions& options);
[[nodiscard]] AcResult ac_analysis(Circuit& circuit,
                                   const std::vector<double>& freqs,
                                   SolverKind solver = SolverKind::Auto);

/// Solves the dense complex system A x = b in place (LU, partial pivot).
/// Exposed for tests. Returns false on a singular matrix.
[[nodiscard]] bool lu_solve_complex(
    std::vector<std::complex<double>>& a_rowmajor,
    std::vector<std::complex<double>>& b, std::size_t n);

} // namespace mss::spice
