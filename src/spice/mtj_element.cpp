#include "spice/mtj_element.hpp"

#include <cmath>

namespace mss::spice {

using core::MtjState;
using core::WriteDirection;

MtjDevice::MtjDevice(std::string name, int free_node, int ref_node,
                     core::MtjParams params, core::MtjState initial)
    : Element(std::move(name)), a_(free_node), b_(ref_node),
      model_(params), initial_(initial), state_(initial) {}

void MtjDevice::reset() {
  state_ = initial_;
  phase_ = 0.0;
  flip_times_.clear();
  current_trace_.clear();
}

void MtjDevice::save_state() {
  saved_state_ = state_;
  saved_phase_ = phase_;
  saved_flips_ = flip_times_.size();
  saved_trace_ = current_trace_.size();
}

void MtjDevice::restore_state() {
  state_ = saved_state_;
  phase_ = saved_phase_;
  flip_times_.resize(saved_flips_);
  current_trace_.resize(saved_trace_);
}

double MtjDevice::current(double v_ab) const {
  return v_ab / model_.resistance(state_, std::abs(v_ab));
}

void MtjDevice::stamp(MnaSystem& st, const Solution& x,
                      const StampContext&) const {
  const double v0 = x.v(a_) - x.v(b_);
  // Numeric linearisation around the iterate (the AP branch resistance
  // depends on |v| through the TMR roll-off).
  const double dv = 1e-3;
  const double i0 = current(v0);
  const double g = (current(v0 + dv) - current(v0 - dv)) / (2.0 * dv);
  const double ieq = i0 - g * v0;
  st.add_all(slots_, {{{a_, a_}, {b_, b_}, {a_, b_}, {b_, a_}}},
             {g, g, -g, -g});
  st.add_rhs(a_, -ieq);
  st.add_rhs(b_, ieq);
}

void MtjDevice::commit(const Solution& x, const StampContext& ctx) {
  const double v = x.v(a_) - x.v(b_);
  const double i = current(v);
  if (ctx.kind == AnalysisKind::Transient) {
    current_trace_.emplace_back(ctx.t, i);
  }
  if (ctx.kind != AnalysisKind::Transient || ctx.dt <= 0.0) return;

  // Positive current (free -> reference terminal direction) writes P;
  // negative writes AP.
  const bool wants_parallel = i > 0.0;
  const MtjState target =
      wants_parallel ? MtjState::Parallel : MtjState::Antiparallel;
  if (target == state_) {
    phase_ = 0.0; // current reinforces the present state
    return;
  }
  const WriteDirection dir = wants_parallel ? WriteDirection::ToParallel
                                            : WriteDirection::ToAntiparallel;
  const double ic = model_.critical_current(dir);
  const double mag = std::abs(i);
  if (mag <= 0.5 * ic) {
    phase_ = 0.0; // incubation lost
    return;
  }
  if (mag <= ic) return; // sub-critical: hold phase, no deterministic flip
  const double t_sw = model_.switching_time(dir, mag);
  phase_ += ctx.dt / t_sw;
  if (phase_ >= 1.0) {
    state_ = target;
    phase_ = 0.0;
    flip_times_.push_back(ctx.t);
  }
}

void MtjDevice::stamp_ac(AcSystem& st, const Solution& op, double) const {
  // Small-signal conductance at the operating point (state held fixed).
  const double v0 = op.v(a_) - op.v(b_);
  const double dv = 1e-3;
  const std::complex<double> g(
      (current(v0 + dv) - current(v0 - dv)) / (2.0 * dv), 0.0);
  st.add_all(slots_, {{{a_, a_}, {b_, b_}, {a_, b_}, {b_, a_}}},
             {g, g, -g, -g});
}

} // namespace mss::spice
