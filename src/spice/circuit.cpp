#include "spice/circuit.hpp"

#include <stdexcept>

namespace mss::spice {

Stamper::Stamper(std::vector<double>& g_flat, std::vector<double>& rhs,
                 std::size_t dim)
    : g_(g_flat), rhs_(rhs), dim_(dim) {}

void Stamper::add_g(int i, int j, double g) {
  if (i == kGround || j == kGround) return;
  g_[static_cast<std::size_t>(i) * dim_ + static_cast<std::size_t>(j)] += g;
}

void Stamper::add_rhs(int i, double v) {
  if (i == kGround) return;
  rhs_[static_cast<std::size_t>(i)] += v;
}

AcStamper::AcStamper(std::vector<std::complex<double>>& y_flat,
                     std::vector<std::complex<double>>& rhs, std::size_t dim)
    : y_(y_flat), rhs_(rhs), dim_(dim) {}

void AcStamper::add_y(int i, int j, std::complex<double> y) {
  if (i == kGround || j == kGround) return;
  y_[static_cast<std::size_t>(i) * dim_ + static_cast<std::size_t>(j)] += y;
}

void AcStamper::add_rhs(int i, std::complex<double> v) {
  if (i == kGround) return;
  rhs_[static_cast<std::size_t>(i)] += v;
}

int Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const int idx = static_cast<int>(names_.size());
  names_.push_back(name);
  index_.emplace(name, idx);
  return idx;
}

int Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("Circuit: unknown node '" + name + "'");
  }
  return it->second;
}

std::size_t Circuit::assign_unknowns() {
  std::size_t next = names_.size();
  for (auto& e : elements_) {
    const int n = e->branch_count();
    if (n > 0) {
      e->set_branch_base(next);
      next += static_cast<std::size_t>(n);
    }
  }
  return next;
}

} // namespace mss::spice
