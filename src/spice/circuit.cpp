#include "spice/circuit.hpp"

#include <stdexcept>

namespace mss::spice {

int Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const int idx = static_cast<int>(names_.size());
  names_.push_back(name);
  index_.emplace(name, idx);
  return idx;
}

int Circuit::find_node(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("Circuit: unknown node '" + name + "'");
  }
  return it->second;
}

std::size_t Circuit::assign_unknowns() {
  std::size_t next = names_.size();
  for (auto& e : elements_) {
    const int n = e->branch_count();
    if (n > 0) {
      e->set_branch_base(next);
      next += static_cast<std::size_t>(n);
    }
  }
  return next;
}

void Circuit::stamp_all(MnaSystem& st, const Solution& x,
                        const StampContext& ctx) const {
  for (const auto& e : elements_) e->stamp(st, x, ctx);
}

void Circuit::stamp_all_ac(AcSystem& st, const Solution& op,
                           double omega) const {
  for (const auto& e : elements_) e->stamp_ac(st, op, omega);
}

bool Circuit::any_nonlinear() const {
  for (const auto& e : elements_) {
    if (e->nonlinear()) return true;
  }
  return false;
}

} // namespace mss::spice
