// Pluggable linear-solver layer of the MNA engine.
//
// Every analysis (DC Newton, transient stepping, AC sweep) assembles the
// system matrix through the same assembly interface — `begin` / `add` /
// `solve` — and never sees the storage format. Two backends implement it:
//
//  * a dense LU with partial pivoting (matrix.hpp's scheme, templated over
//    the scalar so the AC sweep shares it) — fastest for the cell-level
//    netlists of tens of unknowns;
//  * a sparse LU (sparse.hpp: triplet assembly -> CSC, reverse-Cuthill-McKee
//    column ordering, left-looking factorization with threshold partial
//    pivoting) — the array-scale path, sub-quadratic per transient step.
//
// Both backends keep the stamped values next to their factorization and
// refactor only when the values change (the dirty-stamp cache the dense
// engine path gained in PR 1, now a property of the solver layer): a linear
// transient factors twice (first backward-Euler step + the steady
// trapezoidal pattern) and back-substitutes every step after that.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace mss::spice {

/// Backend selection. `Auto` picks dense below `kSparseAutoThreshold`
/// unknowns and sparse at or above it.
enum class SolverKind { Auto, Dense, Sparse };

/// Dimension at which `Auto` switches from the dense to the sparse backend.
/// Cell-level netlists (bit cells, flip-flops, sense amps) stay dense;
/// array-level netlists go sparse.
inline constexpr std::size_t kSparseAutoThreshold = 96;

/// Resolves `Auto` against a system dimension.
[[nodiscard]] SolverKind resolve_solver(SolverKind kind, std::size_t dim);

/// The solver abstraction all analyses stamp into.
///
/// Protocol per solve: `begin(dim)` clears the accumulated values (cheap —
/// symbolic state and factorization caches survive), elements `add`
/// coefficient contributions, then `solve` factors (only if the stamped
/// values differ from the factored copy) and back-substitutes.
template <typename T>
class LinearSolverT {
 public:
  virtual ~LinearSolverT() = default;

  /// Starts a stamping pass for an n x n system. Changing `dim` resets the
  /// backend completely; re-using the same `dim` only zeroes the values.
  virtual void begin(std::size_t dim) = 0;

  /// Accumulates A[i][j] += v. Valid between `begin` and `solve`.
  virtual void add(std::size_t i, std::size_t j, T v) = 0;

  /// Solves A x = b for the stamped A. `x` is resized by the call. Returns
  /// false when the matrix is numerically singular (the factorization cache
  /// is invalidated so the next solve retries from scratch).
  [[nodiscard]] virtual bool solve(const std::vector<T>& b,
                                   std::vector<T>& x) = 0;

  /// Dimension of the last `begin`.
  [[nodiscard]] virtual std::size_t dim() const = 0;

  /// Number of numeric factorizations performed so far — the observable of
  /// the dirty-stamp cache (a linear transient stays at 2 forever).
  [[nodiscard]] virtual std::size_t factor_count() const = 0;

  /// Backend name for diagnostics ("dense" / "sparse").
  [[nodiscard]] virtual const char* name() const = 0;
};

using LinearSolver = LinearSolverT<double>;
using AcLinearSolver = LinearSolverT<std::complex<double>>;

/// Creates the real-valued solver for a backend choice and dimension.
[[nodiscard]] std::unique_ptr<LinearSolver> make_solver(SolverKind kind,
                                                        std::size_t dim);

/// Creates the complex-valued solver (AC sweep) for a backend choice.
[[nodiscard]] std::unique_ptr<AcLinearSolver> make_ac_solver(SolverKind kind,
                                                             std::size_t dim);

} // namespace mss::spice
