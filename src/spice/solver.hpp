// Pluggable linear-solver layer of the MNA engine.
//
// Every analysis (DC Newton, transient stepping, AC sweep) assembles the
// system matrix through the same assembly interface — `begin` / `add` /
// `solve` — and never sees the storage format. Two backends implement it:
//
//  * a dense LU with partial pivoting (matrix.hpp's scheme, templated over
//    the scalar so the AC sweep shares it) — fastest for the cell-level
//    netlists of tens of unknowns;
//  * a sparse LU (sparse.hpp: triplet assembly -> CSC, fill-reducing column
//    ordering — RCM or approximate-minimum-degree, picked by predicted
//    fill under Ordering::Auto — left-looking factorization with threshold
//    partial pivoting) — the array-scale path, sub-quadratic per transient
//    step.
//
// Both backends keep the stamped values next to their factorization and
// refactor only when the values change (the dirty-stamp cache the dense
// engine path gained in PR 1, now a property of the solver layer): a linear
// transient factors twice (first backward-Euler step + the steady
// trapezoidal pattern) and back-substitutes every step after that. The
// sparse backend additionally restarts an invalidated factorization at the
// first changed pivot position (partial refactorization), reusing the
// untouched L/U prefix bit-for-bit.
//
// Hot restamps go through the slot-handle fast path: `slot(i, j)` resolves
// the accumulation slot of a position once, `add_slot` accumulates by
// handle without the position lookup. Handles stay valid while
// `stamp_epoch()` is unchanged; epochs are globally unique across solver
// instances, so a (instance pointer, epoch) pair cached by an element can
// never alias a different solver that happens to reuse the address.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mss::spice {

/// Backend selection. `Auto` picks dense below `kSparseAutoThreshold`
/// unknowns and sparse at or above it.
enum class SolverKind { Auto, Dense, Sparse };

/// Fill-reducing column ordering of the sparse backend. `Auto` computes
/// both RCM and AMD and keeps whichever predicts less factor fill for the
/// assembled pattern (RCM's profile heuristic wins on banded ladders, AMD
/// on meshy periphery netlists). Ignored by the dense backend.
enum class Ordering { Auto, Natural, Rcm, Amd };

/// Dimension at which `Auto` switches from the dense to the sparse backend.
/// Cell-level netlists (bit cells, flip-flops, sense amps) stay dense;
/// array-level netlists go sparse.
inline constexpr std::size_t kSparseAutoThreshold = 96;

/// Resolves `Auto` against a system dimension.
[[nodiscard]] SolverKind resolve_solver(SolverKind kind, std::size_t dim);

namespace detail {
/// Allocates a fresh stamp epoch — one shared monotonic counter for the
/// real and complex solver instantiations (thread-safe).
[[nodiscard]] std::uint64_t next_stamp_epoch();
} // namespace detail

/// The solver abstraction all analyses stamp into.
///
/// Protocol per solve: `begin(dim)` clears the accumulated values (cheap —
/// symbolic state and factorization caches survive), elements `add`
/// coefficient contributions (by position, or by cached slot handle), then
/// `solve` factors (only if the stamped values differ from the factored
/// copy) and back-substitutes.
template <typename T>
class LinearSolverT {
 public:
  /// Slot-handle sentinel used by callers for ground-dropped positions.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  virtual ~LinearSolverT() = default;

  /// Starts a stamping pass for an n x n system. Changing `dim` resets the
  /// backend completely (and bumps the stamp epoch); re-using the same
  /// `dim` only zeroes the values.
  virtual void begin(std::size_t dim) = 0;

  /// Accumulates A[i][j] += v. Valid between `begin` and `solve`.
  virtual void add(std::size_t i, std::size_t j, T v) = 0;

  /// Resolves the accumulation slot of position (i, j), inserting the
  /// position into the pattern if never seen. The handle stays valid — and
  /// keeps addressing the same position — while `stamp_epoch()` is
  /// unchanged.
  [[nodiscard]] virtual std::uint32_t slot(std::size_t i, std::size_t j) = 0;

  /// Accumulates A[slot] += v, skipping the position lookup. `slot` must
  /// come from `this->slot()` under the current stamp epoch.
  virtual void add_slot(std::uint32_t slot, T v) = 0;

  /// Read-only slot lookup: the handle of (i, j) if the position is
  /// already in the pattern, kNoSlot otherwise. Never mutates the solver,
  /// so concurrent calls are safe while no thread is inserting — the
  /// lookup the sink-mode (sharded) assembly path uses. Backends without
  /// slot storage return kNoSlot for everything.
  [[nodiscard]] virtual std::uint32_t find_slot(std::size_t /*i*/,
                                                std::size_t /*j*/) const {
    return kNoSlot;
  }

  /// Epoch of the slot address space: changes whenever previously returned
  /// handles become invalid (dimension reset). Monotonic and unique across
  /// all solver instances in the process.
  [[nodiscard]] std::uint64_t stamp_epoch() const { return epoch_; }

  /// Solves A x = b for the stamped A. `x` is resized by the call. Returns
  /// false when the matrix is numerically singular (the factorization cache
  /// is invalidated so the next solve retries from scratch).
  [[nodiscard]] virtual bool solve(const std::vector<T>& b,
                                   std::vector<T>& x) = 0;

  /// Dimension of the last `begin`.
  [[nodiscard]] virtual std::size_t dim() const = 0;

  /// Number of numeric factorizations performed so far — the observable of
  /// the dirty-stamp cache (a linear transient stays at 2 forever).
  [[nodiscard]] virtual std::size_t factor_count() const = 0;

  /// Total columns numerically factored so far. A full refactorization
  /// contributes `dim`; a sparse partial refactorization contributes only
  /// the recomputed suffix — the observable of the partial-refactor path.
  [[nodiscard]] virtual std::size_t factor_cols_total() const = 0;

  /// Backend name for diagnostics ("dense" / "sparse" / "schur").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Number of accumulation slots of the current pattern, or 0 when the
  /// backend has no stable slot-indexed storage. A non-zero count means
  /// slot handles densely index [0, slot_count()) — the contract the
  /// sharded (parallel) assembly path relies on to size its per-shard
  /// accumulation buffers.
  [[nodiscard]] virtual std::size_t slot_count() const { return 0; }

  /// Slot-ordered values of the last stamping pass, or nullptr when the
  /// backend has no such storage. Exposed for the parallel-assembly
  /// bit-identity tests.
  [[nodiscard]] virtual const std::vector<T>* assembled_values() const {
    return nullptr;
  }

  /// Supernodal panels of width >= 2 in the last factorization (0 for
  /// backends without the supernodal path).
  [[nodiscard]] virtual std::size_t supernode_count() const { return 0; }
  /// Columns covered by those panels.
  [[nodiscard]] virtual std::size_t supernode_cols() const { return 0; }

 protected:
  /// Invalidates all outstanding slot handles.
  void bump_epoch() { epoch_ = detail::next_stamp_epoch(); }

 private:
  std::uint64_t epoch_ = detail::next_stamp_epoch();
};

using LinearSolver = LinearSolverT<double>;
using AcLinearSolver = LinearSolverT<std::complex<double>>;

/// Backend configuration the analyses hand to the factory.
struct SolverOptions {
  SolverKind kind = SolverKind::Auto;
  Ordering ordering = Ordering::Auto; ///< sparse column ordering policy
  /// Sparse: restart an invalidated factorization at the first changed
  /// pivot position instead of recomputing every column. Bit-identical to
  /// a full refactorization; off only for A/B validation.
  bool partial_refactor = true;
  /// Sparse: group identical-pattern pivot runs into dense panels and run
  /// their updates through the SIMD rank-w kernel. Agrees with the scalar
  /// path to rounding (not bit-identical); off is the scalar reference.
  bool supernodal = true;
  /// Sparse: Markowitz dynamic pivoting (right-looking, full factors).
  /// Meant for the AC path, where the complex assembly changes every
  /// value per frequency point anyway.
  bool markowitz = false;
};

/// Creates the real-valued solver for a backend choice and dimension.
[[nodiscard]] std::unique_ptr<LinearSolver> make_solver(SolverKind kind,
                                                        std::size_t dim);
[[nodiscard]] std::unique_ptr<LinearSolver> make_solver(
    const SolverOptions& options, std::size_t dim);

/// Creates the complex-valued solver (AC sweep) for a backend choice.
[[nodiscard]] std::unique_ptr<AcLinearSolver> make_ac_solver(SolverKind kind,
                                                             std::size_t dim);
[[nodiscard]] std::unique_ptr<AcLinearSolver> make_ac_solver(
    const SolverOptions& options, std::size_t dim);

} // namespace mss::spice
