#include "spice/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "spice/engine.hpp"

namespace mss::spice {

std::complex<double> AcResult::v(const std::string& node,
                                 std::size_t k) const {
  if (node == "0" || node == "gnd" || node == "GND") return {0.0, 0.0};
  const auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw std::out_of_range("AcResult: unknown node '" + node + "'");
  }
  return samples_[k][it->second];
}

double AcResult::magnitude(const std::string& node, std::size_t k) const {
  return std::abs(v(node, k));
}

double AcResult::magnitude_db(const std::string& node, std::size_t k) const {
  return 20.0 * std::log10(std::max(1e-300, magnitude(node, k)));
}

double AcResult::phase(const std::string& node, std::size_t k) const {
  return std::arg(v(node, k));
}

std::vector<double> log_sweep(double f_lo, double f_hi, int per_decade) {
  if (f_lo <= 0.0 || f_hi <= f_lo || per_decade < 1) {
    throw std::invalid_argument("log_sweep: bad range");
  }
  std::vector<double> out;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double f = f_lo; f <= f_hi * (1.0 + 1e-12); f *= step) {
    out.push_back(f);
  }
  return out;
}

bool lu_solve_complex(std::vector<std::complex<double>>& a,
                      std::vector<std::complex<double>>& b, std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("lu_solve_complex: dimension mismatch");
  }
  auto at = [&](std::size_t r, std::size_t c) -> std::complex<double>& {
    return a[r * n + c];
  };
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = std::abs(at(r, k));
      if (m > best) {
        best = m;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(at(k, c), at(piv, c));
      std::swap(b[k], b[piv]);
    }
    const std::complex<double> inv = 1.0 / at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const std::complex<double> f = at(r, k) * inv;
      if (f == std::complex<double>{}) continue;
      at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) at(r, c) -= f * at(k, c);
      b[r] -= f * b[k];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    std::complex<double> acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= at(ri, c) * b[c];
    b[ri] = acc / at(ri, ri);
  }
  return true;
}

AcResult ac_analysis(Circuit& circuit, const std::vector<double>& freqs,
                     const AcOptions& options) {
  if (freqs.empty()) {
    throw std::invalid_argument("ac_analysis: empty frequency list");
  }
  EngineOptions dc_opt;
  dc_opt.solver = options.solver;
  dc_opt.ordering = options.ordering;
  dc_opt.stamp_cache = options.stamp_cache;
  Engine engine(circuit, dc_opt);
  const auto dc = engine.dc();
  if (!dc.converged) {
    throw std::runtime_error("ac_analysis: DC operating point did not converge");
  }
  const Solution op(dc.x);

  const std::size_t dim = circuit.assign_unknowns();
  const std::size_t n_nodes = circuit.node_count();

  AcResult res;
  for (std::size_t k = 0; k < n_nodes; ++k) {
    res.node_index_.emplace(circuit.node_name(k), k);
  }

  // Same assembly protocol as the transient engine, complex-valued: the
  // admittances move with omega, so the solver's value compare refactors
  // once per sweep point while the symbolic structure is reused throughout.
  SolverOptions so;
  so.kind = options.solver;
  so.ordering = options.ordering;
  so.markowitz = options.markowitz;
  const auto ac_solver = make_ac_solver(so, dim);
  std::vector<std::complex<double>> rhs(dim);
  std::vector<std::complex<double>> xout(dim);
  GminSlotCache gmin_slots;
  for (double f : freqs) {
    const double omega = 2.0 * M_PI * f;
    ac_solver->begin(dim);
    std::fill(rhs.begin(), rhs.end(), std::complex<double>{});
    AcSystem sys(*ac_solver, rhs, options.stamp_cache);
    circuit.stamp_all_ac(sys, op, omega);
    // gmin on every node diagonal; the slots are fixed across the sweep.
    if (options.stamp_cache) {
      gmin_slots.add_all(*ac_solver, n_nodes, std::complex<double>(1e-12));
    } else {
      for (std::size_t k = 0; k < n_nodes; ++k) {
        sys.add_g(static_cast<int>(k), static_cast<int>(k), 1e-12);
      }
    }
    if (!ac_solver->solve(rhs, xout)) {
      res.converged_ = false;
      xout.assign(dim, std::complex<double>{});
    }
    res.freqs_.push_back(f);
    res.samples_.push_back(xout);
  }
  return res;
}

AcResult ac_analysis(Circuit& circuit, const std::vector<double>& freqs,
                     SolverKind solver) {
  AcOptions o;
  o.solver = solver;
  return ac_analysis(circuit, freqs, o);
}

} // namespace mss::spice
