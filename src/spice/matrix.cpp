#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mss::spice {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

bool lu_factor(Matrix& a, std::vector<std::size_t>& pivots) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("lu_factor: matrix not square");
  }
  pivots.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a.at(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    pivots[k] = piv;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(piv, c));
    }
    const double inv_pivot = 1.0 / a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a.at(r, k) * inv_pivot;
      a.at(r, k) = f; // store the L factor for later substitutions
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) a.at(r, c) -= f * a.at(k, c);
    }
  }
  return true;
}

void lu_substitute(const Matrix& lu, const std::vector<std::size_t>& pivots,
                   std::vector<double>& b) {
  const std::size_t n = lu.rows();
  if (b.size() != n || pivots.size() != n) {
    throw std::invalid_argument("lu_substitute: dimension mismatch");
  }
  // Apply the row permutation, then forward-substitute through L.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
    double acc = b[k];
    for (std::size_t c = 0; c < k; ++c) acc -= lu.at(k, c) * b[c];
    b[k] = acc;
  }
  // Back substitution through U.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu.at(ri, c) * b[c];
    b[ri] = acc / lu.at(ri, ri);
  }
}

bool lu_solve(Matrix& a, std::vector<double>& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("lu_solve: dimension mismatch");
  }
  std::vector<std::size_t> pivots;
  if (!lu_factor(a, pivots)) return false;
  lu_substitute(a, pivots, b);
  return true;
}

} // namespace mss::spice

