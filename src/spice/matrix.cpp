#include "spice/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace mss::spice {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void Matrix::zero() { std::fill(data_.begin(), data_.end(), 0.0); }

bool lu_solve(Matrix& a, std::vector<double>& b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("lu_solve: dimension mismatch");
  }
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a.at(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(piv, c));
      std::swap(b[k], b[piv]);
    }
    const double inv_pivot = 1.0 / a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a.at(r, k) * inv_pivot;
      if (f == 0.0) continue;
      a.at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) a.at(r, c) -= f * a.at(k, c);
      b[r] -= f * b[k];
    }
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * b[c];
    b[ri] = acc / a.at(ri, ri);
  }
  return true;
}

} // namespace mss::spice
