// MTJ as a circuit element: a state-dependent, bias-dependent nonlinear
// resistor whose internal state switches when the stack current exceeds the
// critical current for long enough — the Verilog-A compact-device role in
// the paper's PDK, ported to the MNA engine.
//
// Terminal convention: node `a` is the free-layer terminal, node `b` the
// reference-layer terminal. Conventional current a -> b (electrons from the
// reference into the free layer) drives the device towards the *parallel*
// state; the reverse polarity writes antiparallel.
//
// Switching dynamics in transient: while the current exceeds the critical
// current of the pending transition, the device accumulates switching
// "phase" at rate 1/t_sw(I); the state flips when the phase reaches 1.
// If the drive collapses below half the critical current the incubation is
// lost and the phase resets — a deterministic rendition of the behavioural
// compact model, adequate for waveform-level cell characterisation.
#pragma once

#include <vector>

#include "core/compact_model.hpp"
#include "spice/circuit.hpp"

namespace mss::spice {

/// MTJ two-terminal device.
class MtjDevice final : public Element {
 public:
  MtjDevice(std::string name, int free_node, int ref_node,
            core::MtjParams params,
            core::MtjState initial = core::MtjState::Parallel);

  [[nodiscard]] bool nonlinear() const override { return true; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;
  void commit(const Solution& x, const StampContext& ctx) override;
  void save_state() override;
  void restore_state() override;
  void reset() override;

  /// Present magnetic state.
  [[nodiscard]] core::MtjState state() const { return state_; }
  /// Switching-phase accumulator in [0, 1).
  [[nodiscard]] double phase() const { return phase_; }
  /// Times at which the state flipped during the last transient [s].
  [[nodiscard]] const std::vector<double>& flip_times() const {
    return flip_times_;
  }
  /// Stack current samples (time, amps) recorded at each accepted step;
  /// positive = free -> reference.
  [[nodiscard]] const std::vector<std::pair<double, double>>& current_trace()
      const {
    return current_trace_;
  }
  /// The underlying compact model.
  [[nodiscard]] const core::MtjCompactModel& model() const { return model_; }

 private:
  int a_, b_;
  core::MtjCompactModel model_;
  core::MtjState initial_;
  core::MtjState state_;
  double phase_ = 0.0;
  std::vector<double> flip_times_;
  std::vector<std::pair<double, double>> current_trace_;
  mutable StampSlots<4> slots_;

  // Snapshot for adaptive trial-step rollback (vectors are append-only
  // between commits, so saved sizes suffice).
  core::MtjState saved_state_ = core::MtjState::Parallel;
  double saved_phase_ = 0.0;
  std::size_t saved_flips_ = 0;
  std::size_t saved_trace_ = 0;

  /// Device current for a terminal voltage difference.
  [[nodiscard]] double current(double v_ab) const;
};

} // namespace mss::spice
