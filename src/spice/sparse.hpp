// Sparse MNA backend: triplet assembly -> compressed-sparse-column pattern,
// a fill-reducing column ordering (reverse-Cuthill-McKee or approximate
// minimum degree, selected by predicted fill under Ordering::Auto), and a
// left-looking (Gilbert-Peierls-style) sparse LU with threshold partial
// pivoting.
//
// Assembly model. MNA stamps are position-stable but *value*-varying: every
// Newton iteration re-stamps the same (i, j) set with new linearisations,
// and nonlinear elements may emit the entries of that set in a different
// order (the MOSFET swaps drain/source rows with the bias polarity). The
// solver therefore keys accumulation slots off an (i, j) hash map whose
// union pattern grows monotonically; the CSC structure, the column
// ordering, and the slot -> CSC scatter map are rebuilt only when a
// never-seen position appears, which for a fixed netlist happens exactly
// once. Per-pass cost after that is O(nnz) accumulate + gather. Elements
// skip even the hash via the slot-handle fast path (`slot`/`add_slot`):
// slot indices are append-only under a fixed dimension, so cached handles
// survive pattern growth and are invalidated — via the stamp epoch — only
// by a dimension reset.
//
// Ordering. RCM minimises the profile (right for banded ladder/line
// netlists); AMD greedily minimises fill (right for meshy array cores with
// periphery cross-coupling). `Ordering::Auto` computes both, predicts
// nnz(L) for each with an elimination-tree symbolic pass, and keeps the
// winner — the choice is made once per pattern rebuild.
//
// Factorization. For each column (in the chosen order) the not-yet-factored
// column of A is scattered into a dense work vector, updates from earlier
// pivot columns are applied in ascending pivot order via a min-heap
// worklist (entries only ever introduce later pivots, so the heap pops
// monotonically), and the pivot row is chosen by threshold partial
// pivoting: the diagonal row wins whenever it is within `pivot_tol` of the
// column maximum, preserving the ordering's structure; otherwise the max
// row wins, which is what makes the zero-diagonal branch rows of voltage
// sources solvable. L and U are stored column-wise in flat arrays reused
// across refactors.
//
// The dirty-value cache compares the gathered CSC values against the
// factored copy and skips the numeric factorization when unchanged, so a
// linear transient pays one back-substitution — O(nnz(L) + nnz(U)) — per
// step. When values *did* change, the comparison also yields the first
// changed pivot position: a left-looking column depends only on its own
// A column and on earlier pivot columns, so every L/U column before that
// position is still exact and the factorization restarts there (partial
// refactorization), bit-identical to a full refactor. Newton iterations
// that only move device rows late in the ordering refactor a short suffix.
//
// Supernodes. Consecutive pivot columns whose below-diagonal L pattern is
// identical (each column's pattern = the previous one minus its pivot row)
// are grouped into panels as they complete and copied into contiguous
// dense column-major storage. An update from a closed panel to a later
// column is then one dense gather, a small unit-triangular solve over the
// panel's pivot rows, and a rank-w accumulation over the shared below-block
// through the util/simd.hpp Batch kernels, scattered back in a single pass
// — replacing w indexed column walks. The panel accumulation reassociates
// the update sum, so the supernodal path agrees with the scalar path to
// rounding (1e-9 contract), while partial-vs-full refactors under a fixed
// supernodal setting remain bit-identical: restarts snap down to the
// owning panel's first column (supernode-granular restarts), and every
// reused prefix column — panels included — is byte-for-byte the stored one.
//
// Markowitz mode (AC path). `set_markowitz(true)` replaces the static-
// order left-looking factorization with a right-looking elimination that
// picks each pivot dynamically by minimal Markowitz cost
// (rowcount-1)*(colcount-1) among entries within `pivot_tol` of their
// column maximum. The complex-valued AC assembly destroys the real
// pattern's structure (omega-scaled admittances), where a static fill
// order chosen once can lose badly; dynamic pivoting repays the ordering
// cost per factorization. Partial refactorization and supernodes do not
// apply in this mode (every factor is a full one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "spice/solver.hpp"

namespace mss::spice {

/// Reverse-Cuthill-McKee ordering of a sparse pattern given in CSC form
/// (the pattern is symmetrised internally; every component is seeded from a
/// pseudo-peripheral vertex). Returns `order` with order[k] = the original
/// index placed at position k. Exposed for tests.
[[nodiscard]] std::vector<std::uint32_t> rcm_order(
    std::size_t dim, const std::vector<std::uint32_t>& col_ptr,
    const std::vector<std::uint32_t>& row_ind);

/// Approximate-minimum-degree ordering of a sparse pattern given in CSC
/// form (symmetrised internally). Classic quotient-graph elimination:
/// eliminating a vertex forms an element clique over its neighbours,
/// absorbed elements are merged, and vertex degrees are approximated as
/// |variable neighbours| + sum of adjacent element sizes. Ties break
/// towards the smaller index, so the ordering is deterministic. Exposed
/// for tests.
[[nodiscard]] std::vector<std::uint32_t> amd_order(
    std::size_t dim, const std::vector<std::uint32_t>& col_ptr,
    const std::vector<std::uint32_t>& row_ind);

/// Predicted nnz(L) (diagonal included) of a Cholesky-style elimination of
/// the symmetrised pattern under `order` — the fill count Ordering::Auto
/// compares. Elimination-tree row-structure walk, O(nnz(L)). Exposed for
/// tests.
[[nodiscard]] std::size_t symbolic_fill(
    std::size_t dim, const std::vector<std::uint32_t>& col_ptr,
    const std::vector<std::uint32_t>& row_ind,
    const std::vector<std::uint32_t>& order);

/// The sparse backend. Instantiated for double (DC/transient) and
/// std::complex<double> (AC).
template <typename T>
class SparseSolverT final : public LinearSolverT<T> {
 public:
  /// `pivot_tol` in (0, 1]: the diagonal is kept as pivot when its
  /// magnitude is >= pivot_tol * (column max); 1.0 degenerates to exact
  /// partial pivoting, small values favour sparsity.
  explicit SparseSolverT(double pivot_tol = 0.1);

  /// Column-ordering policy; takes effect at the next symbolic rebuild.
  void set_ordering(Ordering ordering);
  /// Enables/disables the partial-refactorization fast path (on by
  /// default; the off state exists for A/B equivalence validation).
  void set_partial_refactor(bool enabled) { partial_ = enabled; }
  /// Enables/disables supernodal panel processing (on by default; the off
  /// state is the scalar reference for the equivalence matrix). Toggling
  /// invalidates the numeric factorization — the two modes produce
  /// rounding-level different factors, so mixing prefixes is not allowed.
  void set_supernodal(bool enabled);
  /// Switches to Markowitz dynamic pivoting (right-looking elimination,
  /// pivot by minimal (rowcount-1)*(colcount-1) within the magnitude
  /// threshold). Off by default; meant for the AC path. Disables the
  /// partial-refactorization and supernodal machinery while on.
  void set_markowitz(bool enabled);

  void begin(std::size_t dim) override;
  void add(std::size_t i, std::size_t j, T v) override;
  [[nodiscard]] std::uint32_t slot(std::size_t i, std::size_t j) override;
  void add_slot(std::uint32_t slot, T v) override { vals_[slot] += v; }
  [[nodiscard]] std::uint32_t find_slot(std::size_t i,
                                        std::size_t j) const override {
    const auto it = slot_of_.find((static_cast<std::uint64_t>(i) << 32) |
                                  static_cast<std::uint64_t>(j));
    return it == slot_of_.end() ? this->kNoSlot : it->second;
  }
  [[nodiscard]] bool solve(const std::vector<T>& b,
                           std::vector<T>& x) override;
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t factor_count() const override {
    return factor_count_;
  }
  [[nodiscard]] std::size_t factor_cols_total() const override {
    return factor_cols_total_;
  }
  [[nodiscard]] const char* name() const override { return "sparse"; }
  [[nodiscard]] std::size_t slot_count() const override {
    return vals_.size();
  }
  [[nodiscard]] const std::vector<T>* assembled_values() const override {
    return &vals_;
  }
  [[nodiscard]] std::size_t supernode_count() const override {
    return sn_panels_multi_;
  }
  [[nodiscard]] std::size_t supernode_cols() const override {
    return sn_cols_multi_;
  }

  /// Structural nonzeros of the assembled pattern.
  [[nodiscard]] std::size_t nnz() const { return slot_row_.size(); }
  /// nnz(L) + nnz(U) of the last factorization (diagonals included).
  [[nodiscard]] std::size_t factor_nnz() const;
  /// Ordering the current symbolic structure uses ("rcm" / "amd" /
  /// "natural"; "none" before the first rebuild).
  [[nodiscard]] const char* ordering_used() const { return ordering_used_; }
  /// Pivot position the last numeric factorization started from (0 = full
  /// refactor; > 0 = partial, the L/U prefix below it was reused).
  [[nodiscard]] std::size_t last_factor_start() const {
    return last_factor_start_;
  }
  /// Columns recomputed by the scattered (dirty-set) refactorization path
  /// over the solver's lifetime — the clean columns it skipped *inside*
  /// the refactor suffix are the difference to a first-dirty-pivot
  /// restart. 0 until a solve engages the scattered path.
  [[nodiscard]] std::size_t scattered_cols_total() const {
    return scattered_cols_total_;
  }

 private:
  std::size_t dim_ = 0;
  double tol_;
  Ordering ordering_ = Ordering::Auto;
  bool partial_ = true;
  bool supernodal_ = true;
  bool markowitz_ = false;
  std::size_t factor_count_ = 0;
  std::size_t factor_cols_total_ = 0;
  std::size_t scattered_cols_total_ = 0;
  std::size_t last_factor_start_ = 0;
  const char* ordering_used_ = "none";

  // --- assembly: union pattern keyed by (i, j) ---
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_;
  std::vector<std::uint32_t> slot_row_, slot_col_;
  std::vector<T> vals_; ///< accumulation, indexed by slot
  bool pattern_dirty_ = true;

  // --- symbolic state (rebuilt when the pattern grows) ---
  std::vector<std::uint32_t> col_ptr_, row_ind_; ///< CSC pattern
  std::vector<std::uint32_t> csc_of_slot_;       ///< slot -> CSC position
  std::vector<std::uint32_t> q_;    ///< column order (position -> column)
  std::vector<std::uint32_t> qpos_; ///< column -> pivot position

  // --- numeric values + dirty-value factorization cache ---
  std::vector<T> csc_vals_;    ///< gathered values in CSC order
  std::vector<T> cached_vals_; ///< values the current factorization is of
  bool factor_valid_ = false;

  // --- factors: L (unit diagonal implicit) and U, column-wise ---
  std::vector<std::uint32_t> l_ptr_, l_rows_; ///< L rows are original rows
  std::vector<T> l_vals_;
  std::vector<std::uint32_t> u_ptr_, u_rows_; ///< U rows are pivot orders
  std::vector<T> u_vals_;
  std::vector<T> diag_;                  ///< U diagonal, by pivot order
  std::vector<std::int32_t> pinv_;       ///< original row -> pivot order
  std::vector<std::uint32_t> prow_;      ///< pivot order -> original row

  // --- scratch (persistent, allocation-free in steady state) ---
  std::vector<T> work_;                  ///< dense column accumulator
  std::vector<std::uint8_t> mark_;       ///< row-touched flags
  std::vector<std::uint32_t> heap_;      ///< pending pivot updates
  std::vector<std::uint32_t> unassigned_; ///< pivot candidates of the column
  std::vector<std::uint32_t> touched_;   ///< rows to unmark after a column
  std::vector<std::uint32_t> u_scratch_rows_;
  std::vector<T> u_scratch_vals_;
  std::vector<T> l_scratch_vals_;        ///< replayed L values before commit
  std::vector<std::uint8_t> dirty_pos_;  ///< pivot position -> stamps changed
  std::vector<T> sol_;                   ///< solution by pivot order

  // --- supernodal panels (contiguous pivot runs with identical below-
  // diagonal L pattern, stored as dense column-major blocks) ---
  std::vector<std::uint32_t> sn_start_; ///< panel -> first pivot position
  std::vector<std::uint32_t> sn_width_; ///< panel -> column count
  std::vector<std::uint32_t> sn_of_col_; ///< pivot position -> panel
  std::vector<std::uint32_t> sn_rows_ptr_, sn_rows_; ///< below-row lists
  std::vector<std::uint32_t> sn_panel_ptr_; ///< panel -> dense value base
  std::vector<T> sn_panel_vals_; ///< [w triangle rows][nb below rows] / col
  std::size_t sn_panels_multi_ = 0; ///< panels of width >= 2 (last factor)
  std::size_t sn_cols_multi_ = 0;   ///< columns covered by those panels
  std::vector<std::uint64_t> sn_mark_;   ///< open-panel row membership
  std::uint64_t sn_mark_ctr_ = 0;
  std::vector<std::uint64_t> sn_done_;   ///< panel applied to current col?
  std::uint64_t sn_col_stamp_ = 0;
  std::vector<std::uint32_t> sn_loc_;    ///< row -> panel-local position
  std::vector<T> sn_u_, sn_acc_;         ///< panel solve / update scratch

  void rebuild_symbolic();
  /// Numeric factorization from pivot position `start` (0 = full). Reuses
  /// the L/U columns below `start`, which requires a complete valid
  /// factorization when `start > 0`.
  [[nodiscard]] bool factor(std::size_t start);
  /// Right-looking factorization with Markowitz dynamic pivoting (always
  /// a full factor; fills the same L/U/permutation arrays).
  [[nodiscard]] bool factor_markowitz();
  /// Closes the open detection panel [s, e) and records it (dense copy
  /// for width >= 2).
  void close_panel(std::size_t s, std::size_t e);
  /// Scattered (dirty-set) refactorization: recompute only the columns
  /// whose stamp values changed plus their dependents through the stored
  /// U structure, rewriting L/U values in place (the static pattern keeps
  /// per-column storage offsets stable). `dirty_pos_` must hold the
  /// own-dirty flags for positions >= `first_dirty`. Sets `engaged` false
  /// (and returns true) when the classic suffix restart is at least as
  /// cheap; falls back to `factor()` itself on any replay deviation.
  [[nodiscard]] bool refactor_scattered(std::size_t first_dirty,
                                        bool& engaged);
  /// Replays the numeric computation of pivot position `k` against the
  /// stored symbolic trace. Returns true and commits the new values when
  /// the pivot row and the L/U patterns replay exactly; returns false
  /// (storage untouched) when the replay deviates — values drifted enough
  /// to change a pivot choice or an exact-zero drop.
  [[nodiscard]] bool replay_column(std::size_t k);
  /// Dense application of closed panel `panel` to the column accumulator
  /// (`work_`/`mark_`/`heap_`/`unassigned_` state). Rows pivotal at a
  /// position >= `pivotal_bound` count as unassigned — the bound is the
  /// position of the column being computed.
  void apply_closed_panel(std::uint32_t panel, std::int32_t pivotal_bound);
};

extern template class SparseSolverT<double>;
extern template class SparseSolverT<std::complex<double>>;

using SparseSolver = SparseSolverT<double>;
using AcSparseSolver = SparseSolverT<std::complex<double>>;

} // namespace mss::spice
