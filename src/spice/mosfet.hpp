// Level-1 (Shichman-Hodges) MOSFET, the classic square-law model with
// channel-length modulation. Quantitatively crude for deep-submicron
// devices but entirely adequate for the relative delay/energy
// characterisation the paper's flow performs, and well-conditioned for
// Newton iteration. Parameters default to values representative of the PDK
// nodes; the cells library scales W/L per cell.
#pragma once

#include "spice/circuit.hpp"

namespace mss::spice {

/// Device polarity.
enum class MosType { Nmos, Pmos };

/// Model card shared by instances.
struct MosModel {
  MosType type = MosType::Nmos;
  double vth = 0.35;    ///< threshold voltage [V] (magnitude)
  double kp = 500e-6;   ///< transconductance mu*Cox [A/V^2]
  double lambda = 0.1;  ///< channel-length modulation [1/V]
  double c_gate_per_m = 1.0e-9; ///< gate cap per metre of width [F/m]

  /// Representative NMOS card for a PDK node feature size.
  [[nodiscard]] static MosModel nmos(double vth = 0.35, double kp = 500e-6);
  /// Representative PMOS card.
  [[nodiscard]] static MosModel pmos(double vth = 0.35, double kp = 250e-6);
};

/// One MOSFET instance (D, G, S; bulk tied to source).
class Mosfet final : public Element {
 public:
  Mosfet(std::string name, int drain, int gate, int source, MosModel model,
         double width_m, double length_m);

  [[nodiscard]] bool nonlinear() const override { return true; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;

  /// Drain current for the given terminal voltages (exposed for tests).
  [[nodiscard]] double ids(double vgs, double vds) const;

  /// Channel width [m].
  [[nodiscard]] double width() const { return w_; }

 private:
  int d_, g_, s_;
  MosModel m_;
  double w_, l_;
  mutable StampSlots<6> slots_;

  /// Square-law current + derivatives for an NMOS-referred bias point.
  void eval(double vgs, double vds, double& id, double& gm, double& gds) const;
};

} // namespace mss::spice
