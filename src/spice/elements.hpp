// Linear circuit elements: resistor, capacitor, independent voltage and
// current sources (with arbitrary waveforms), and a voltage-controlled
// switch.
#pragma once

#include <memory>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace mss::spice {

/// Two-terminal linear resistor.
class Resistor final : public Element {
 public:
  Resistor(std::string name, int a, int b, double ohms);
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;
  /// Resistance value [Ohm].
  [[nodiscard]] double ohms() const { return r_; }

 private:
  int a_, b_;
  double r_;
  mutable StampSlots<4> slots_;
};

/// Two-terminal linear capacitor (companion model in transient; open in DC).
class Capacitor final : public Element {
 public:
  Capacitor(std::string name, int a, int b, double farads,
            double v_initial = 0.0);
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;
  void commit(const Solution& x, const StampContext& ctx) override;
  void save_state() override;
  void restore_state() override;
  void reset() override;

 private:
  int a_, b_;
  double c_;
  double v0_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
  double saved_v_prev_ = 0.0;
  double saved_i_prev_ = 0.0;
  mutable StampSlots<4> slots_;
};

/// Independent voltage source with a waveform; claims one branch unknown.
class VoltageSource final : public Element {
 public:
  VoltageSource(std::string name, int plus, int minus,
                std::unique_ptr<Waveform> wave);
  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_base(std::size_t base) override { branch_ = base; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  /// Index of the branch-current unknown (valid after assign_unknowns).
  [[nodiscard]] std::size_t branch_index() const { return branch_; }
  /// Source value at time t.
  [[nodiscard]] double value(double t) const { return wave_->value(t); }
  /// Marks this source as the AC stimulus with the given magnitude
  /// (SPICE's "AC 1" specification). Zero (default) makes it an AC short.
  void set_ac(double magnitude) { ac_mag_ = magnitude; }
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;
  void append_breakpoints(double t_stop,
                          std::vector<double>& out) const override;

 private:
  int plus_, minus_;
  std::unique_ptr<Waveform> wave_;
  std::size_t branch_ = 0;
  double ac_mag_ = 0.0;
  mutable StampSlots<4> slots_;
};

/// Independent current source (flows from plus through the source to minus,
/// i.e. injects into `minus`... SPICE convention: positive current flows
/// from the + node through the source to the - node).
class CurrentSource final : public Element {
 public:
  CurrentSource(std::string name, int plus, int minus,
                std::unique_ptr<Waveform> wave);
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void append_breakpoints(double t_stop,
                          std::vector<double>& out) const override;

 private:
  int plus_, minus_;
  std::unique_ptr<Waveform> wave_;
};

/// Voltage-controlled switch: resistance r_on when v(ctrl+) - v(ctrl-)
/// exceeds the threshold, r_off otherwise. Mildly nonlinear (re-stamped per
/// iteration) with hysteresis-free sharp threshold; adequate for enable
/// gating in characterisation benches.
class Switch final : public Element {
 public:
  Switch(std::string name, int a, int b, int ctrl_p, int ctrl_n,
         double threshold, double r_on = 1.0, double r_off = 1e9);
  [[nodiscard]] bool nonlinear() const override { return true; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;

 private:
  int a_, b_, cp_, cn_;
  double vth_, r_on_, r_off_;
  mutable StampSlots<4> slots_;
};

} // namespace mss::spice
