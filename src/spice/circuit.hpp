// Netlist container and the element interface of the MNA engine.
//
// Unknown vector layout: x = [v(1..N-1 nodes, ground excluded), i(branches)].
// Elements register nodes by name through the Circuit and may claim branch
// unknowns (voltage sources, inductor-like elements).
//
// Elements stamp into an `MnaSystem` (real) or `AcSystem` (complex), which
// drop ground rows/columns and forward matrix coefficients to the pluggable
// LinearSolver backend (solver.hpp) — elements never see whether the system
// is assembled densely or sparsely.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spice/solver.hpp"

namespace mss::spice {

/// Ground node index sentinel (node "0" or "gnd").
inline constexpr int kGround = -1;

/// What the engine is currently computing; elements stamp differently for
/// DC (capacitors open) vs transient (companion models).
enum class AnalysisKind { Dc, Transient };

/// Integration method for dynamic elements.
enum class Integrator { BackwardEuler, Trapezoidal };

/// Per-iteration context handed to Element::stamp.
struct StampContext {
  AnalysisKind kind = AnalysisKind::Dc;
  Integrator method = Integrator::Trapezoidal;
  double t = 0.0;     ///< time at the *end* of the current step
  double dt = 0.0;    ///< current step size (0 in DC)
  bool first_step = false; ///< transient: first step after DC (use BE)
};

/// Per-element cache of resolved stamp slots for a fixed set of N (i, j)
/// positions. An element declares one `mutable StampSlots<N>` member per
/// stamping pattern and accumulates through `MnaSystemT::add_all`, which
/// re-resolves the handles only when the (solver instance, stamp epoch)
/// tag no longer matches — i.e. after the engine swapped or reset the
/// backend. Handles are scalar-agnostic, so the same member serves the
/// real (transient) and complex (AC) stamping paths; the owner tag keeps
/// them apart. Not thread-safe per element: a circuit (and therefore its
/// elements) belongs to one engine at a time.
template <std::size_t N>
struct StampSlots {
  const void* owner = nullptr; ///< solver the handles index into
  std::uint64_t epoch = 0;     ///< solver stamp epoch at resolve time
  std::array<std::uint32_t, N> s{};
};

/// Runtime-sized cache of the per-node diagonal slots the analyses stamp
/// their gmin ground shunts into — the same (owner, epoch) invalidation
/// contract as StampSlots, for a slot count only known at analysis time.
class GminSlotCache {
 public:
  /// Accumulates `gmin` on every node diagonal through cached slots,
  /// re-resolving when the solver instance/epoch/node count changed.
  template <typename T>
  void add_all(LinearSolverT<T>& solver, std::size_t n_nodes, T gmin) {
    if (owner_ != &solver || epoch_ != solver.stamp_epoch() ||
        slots_.size() != n_nodes) {
      slots_.resize(n_nodes);
      for (std::size_t k = 0; k < n_nodes; ++k) slots_[k] = solver.slot(k, k);
      owner_ = &solver;
      epoch_ = solver.stamp_epoch();
    }
    for (std::size_t k = 0; k < n_nodes; ++k) {
      solver.add_slot(slots_[k], gmin);
    }
  }

 private:
  const void* owner_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> slots_;
};

/// The MNA system elements stamp into: matrix coefficients go to the linear
/// solver backend, RHS terms to the analysis-owned right-hand-side vector.
/// Node index kGround is silently dropped. Instantiated for double
/// (DC/transient conductances) and std::complex<double> (AC admittances).
///
/// Sink mode (the sharded-assembly path): constructed with a slot-indexed
/// accumulation buffer, the system never touches the solver — matrix
/// contributions land in `sink[slot]`, RHS terms in the caller's private
/// rhs vector, and any stamp that would need to *mutate* the solver (a
/// cold slot cache, a never-seen position) sets the miss flag instead, so
/// the caller can redo the pass serially. Warm caches and the read-only
/// `find_slot` lookup make a sink-mode stamp safe to run concurrently
/// with other sink-mode stamps over the same solver.
template <typename T>
class MnaSystemT {
 public:
  /// `use_slot_cache` routes `add_all` through cached slot handles; false
  /// forces the per-position `add_g` path (A/B validation of the cache).
  MnaSystemT(LinearSolverT<T>& solver, std::vector<T>& rhs,
             bool use_slot_cache = true)
      : solver_(solver), rhs_(rhs), cache_(use_slot_cache) {}

  /// Sink-mode system: matrix values accumulate into `sink` (indexed by
  /// slot handle, sized solver.slot_count()), rhs into `rhs` (the
  /// caller's shard-private buffer). Slot caching is implied.
  MnaSystemT(LinearSolverT<T>& solver, std::vector<T>& rhs, T* sink)
      : solver_(solver), rhs_(rhs), cache_(true), sink_(sink) {}

  /// Adds g to A[i][j] (conductance / admittance).
  void add_g(int i, int j, T g) {
    if (i == kGround || j == kGround) return;
    if (sink_ != nullptr) {
      const std::uint32_t s = solver_.find_slot(
          static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      if (s == LinearSolverT<T>::kNoSlot) {
        miss_ = true; // position not in the pattern yet: needs a serial pass
      } else {
        sink_[s] += g;
      }
      return;
    }
    solver_.add(static_cast<std::size_t>(i), static_cast<std::size_t>(j), g);
  }

  /// Accumulates `vals[k]` at `pos[k]` through the element's slot cache:
  /// slots are resolved once per (solver, epoch) and every later restamp
  /// is a direct indexed add, skipping the backend's position lookup.
  /// Ground positions resolve to kNoSlot and are dropped. Accumulation
  /// order matches the equivalent add_g sequence exactly, so cached and
  /// uncached restamps are bit-identical.
  template <std::size_t N>
  void add_all(StampSlots<N>& cache,
               const std::array<std::pair<int, int>, N>& pos,
               const std::array<T, N>& vals) {
    if (!cache_) {
      for (std::size_t k = 0; k < N; ++k) {
        add_g(pos[k].first, pos[k].second, vals[k]);
      }
      return;
    }
    if (cache.owner != &solver_ || cache.epoch != solver_.stamp_epoch()) {
      if (sink_ != nullptr) {
        // A cold cache cannot be resolved here: resolution inserts into
        // the solver, which other shards are reading concurrently.
        miss_ = true;
        return;
      }
      for (std::size_t k = 0; k < N; ++k) {
        cache.s[k] =
            (pos[k].first == kGround || pos[k].second == kGround)
                ? LinearSolverT<T>::kNoSlot
                : solver_.slot(static_cast<std::size_t>(pos[k].first),
                               static_cast<std::size_t>(pos[k].second));
      }
      cache.owner = &solver_;
      cache.epoch = solver_.stamp_epoch();
    }
    if (sink_ != nullptr) {
      for (std::size_t k = 0; k < N; ++k) {
        if (cache.s[k] != LinearSolverT<T>::kNoSlot) {
          sink_[cache.s[k]] += vals[k];
        }
      }
      return;
    }
    for (std::size_t k = 0; k < N; ++k) {
      if (cache.s[k] != LinearSolverT<T>::kNoSlot) {
        solver_.add_slot(cache.s[k], vals[k]);
      }
    }
  }

  /// Adds value to RHS[i] (current injected *into* node i).
  void add_rhs(int i, T v) {
    if (i == kGround) return;
    rhs_[static_cast<std::size_t>(i)] += v;
  }
  /// System dimension.
  [[nodiscard]] std::size_t dim() const { return rhs_.size(); }
  /// The backend assembling this system.
  [[nodiscard]] const LinearSolverT<T>& solver() const { return solver_; }
  /// Whether add_all runs through cached slot handles.
  [[nodiscard]] bool slot_cache_enabled() const { return cache_; }
  /// Sink mode: true when a stamp needed solver mutation (cold cache or
  /// unseen position) and was skipped — the pass must be redone serially.
  [[nodiscard]] bool sink_missed() const { return miss_; }

 private:
  LinearSolverT<T>& solver_;
  std::vector<T>& rhs_;
  bool cache_;
  T* sink_ = nullptr;
  bool miss_ = false;
};

using MnaSystem = MnaSystemT<double>;
using AcSystem = MnaSystemT<std::complex<double>>;

/// Read access to the present Newton iterate / last accepted solution.
class Solution {
 public:
  explicit Solution(const std::vector<double>& x) : x_(&x) {}
  /// Voltage at node index (0 for ground).
  [[nodiscard]] double v(int node) const {
    return node == kGround ? 0.0 : (*x_)[static_cast<std::size_t>(node)];
  }
  /// Raw unknown (branch currents live past the node block).
  [[nodiscard]] double raw(std::size_t idx) const { return (*x_)[idx]; }

 private:
  const std::vector<double>* x_;
};

/// Base class of all circuit elements.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  /// Instance name (diagnostics, MDL current probes).
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Number of extra branch-current unknowns this element needs.
  [[nodiscard]] virtual int branch_count() const { return 0; }
  /// Called once by the circuit with the index of the first claimed branch
  /// unknown (absolute index into x).
  virtual void set_branch_base(std::size_t /*base*/) {}

  /// True when the element's stamps depend on the present iterate
  /// (MOSFET, MTJ): forces Newton iteration.
  [[nodiscard]] virtual bool nonlinear() const { return false; }

  /// Sharded-assembly group of this element. Elements of the same group
  /// always stamp on the same shard in declaration order; group -1 (the
  /// default) is the shared/serial group. A netlist builder that tags
  /// groups guarantees that two different groups never touch the same
  /// matrix slot or rhs row — that exclusivity is what makes the sharded
  /// assembly bit-identical to the serial pass.
  [[nodiscard]] int stamp_group() const { return stamp_group_; }
  void set_stamp_group(int group) { stamp_group_ = group; }

  /// Adds the element's contribution for the current iterate `x`.
  virtual void stamp(MnaSystem& st, const Solution& x,
                     const StampContext& ctx) const = 0;

  /// Adds the element's *small-signal* contribution, linearised at the DC
  /// operating point `op`, for angular frequency `omega`. The default is a
  /// no-op (element invisible to AC: ideal current sources, open elements).
  virtual void stamp_ac(AcSystem& /*st*/, const Solution& /*op*/,
                        double /*omega*/) const {}

  /// Accepts the converged step (update internal state: capacitor history,
  /// MTJ switching phase).
  virtual void commit(const Solution& /*x*/, const StampContext& /*ctx*/) {}

  /// Snapshots the committed internal state so an adaptive trial step can
  /// be rolled back; `restore_state` reverts to the last save. Default
  /// no-ops for stateless elements.
  virtual void save_state() {}
  virtual void restore_state() {}

  /// Appends the element's hard time points in (0, t_stop) — waveform
  /// corners the adaptive stepper must land on exactly. Default: none.
  virtual void append_breakpoints(double /*t_stop*/,
                                  std::vector<double>& /*out*/) const {}

  /// Resets internal state before a new analysis.
  virtual void reset() {}

 private:
  std::string name_;
  int stamp_group_ = -1;
};

/// The netlist: nodes by name + owned elements.
class Circuit {
 public:
  /// Returns the index for a node name, creating it on first use.
  /// "0" and "gnd" map to the ground sentinel.
  int node(const std::string& name);

  /// Number of non-ground nodes.
  [[nodiscard]] std::size_t node_count() const { return names_.size(); }

  /// Name of node index i.
  [[nodiscard]] const std::string& node_name(std::size_t i) const {
    return names_[i];
  }

  /// Index of an existing node; throws std::out_of_range if absent.
  [[nodiscard]] int find_node(const std::string& name) const;

  /// Adds an element (ownership transferred). Returns a borrowed pointer
  /// usable for later state queries.
  template <typename T>
  T* add(std::unique_ptr<T> e) {
    T* raw = e.get();
    elements_.push_back(std::move(e));
    return raw;
  }

  /// Owned elements.
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& elements() const {
    return elements_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<Element>>& elements() {
    return elements_;
  }

  /// Assigns branch indices; returns total unknown count. Called by the
  /// engine before an analysis.
  std::size_t assign_unknowns();

  /// Stamps every element for the given iterate/context — the one assembly
  /// path all real-valued analyses share.
  void stamp_all(MnaSystem& st, const Solution& x,
                 const StampContext& ctx) const;

  /// Stamps every element's small-signal contribution at `omega`.
  void stamp_all_ac(AcSystem& st, const Solution& op, double omega) const;

  /// True when any element's stamps depend on the iterate (forces Newton).
  [[nodiscard]] bool any_nonlinear() const;

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Element>> elements_;
};

} // namespace mss::spice
