// Controlled sources, diode and inductor — the remaining SPICE element
// vocabulary used by analog MSS interface circuits (sensor front-ends,
// oscillator read-out chains).
#pragma once

#include "spice/circuit.hpp"

namespace mss::spice {

/// Voltage-controlled voltage source (E element): v(p) - v(n) =
/// gain * (v(cp) - v(cn)). Claims one branch unknown.
class Vcvs final : public Element {
 public:
  Vcvs(std::string name, int p, int n, int cp, int cn, double gain);
  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_base(std::size_t base) override { branch_ = base; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  /// Branch-current unknown index.
  [[nodiscard]] std::size_t branch_index() const { return branch_; }
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;

 private:
  int p_, n_, cp_, cn_;
  double gain_;
  std::size_t branch_ = 0;
  mutable StampSlots<6> slots_;
};

/// Voltage-controlled current source (G element): i(p->n) =
/// gm * (v(cp) - v(cn)).
class Vccs final : public Element {
 public:
  Vccs(std::string name, int p, int n, int cp, int cn, double gm);
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;

 private:
  int p_, n_, cp_, cn_;
  double gm_;
  mutable StampSlots<4> slots_;
};

/// Junction diode with the exponential Shockley model, series-limited for
/// Newton robustness (voltage clamp per iteration via the standard
/// junction-limiting scheme).
class Diode final : public Element {
 public:
  /// `i_s` saturation current [A], `n_ideality` emission coefficient.
  Diode(std::string name, int anode, int cathode, double i_s = 1e-14,
        double n_ideality = 1.0);
  [[nodiscard]] bool nonlinear() const override { return true; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  /// Diode current at a junction voltage.
  [[nodiscard]] double current(double v) const;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;

 private:
  int a_, c_;
  double i_s_;
  double vt_n_; ///< n * thermal voltage
  mutable StampSlots<4> slots_;
};

/// Linear inductor; claims a branch unknown carrying its current.
/// Transient companion model (BE / trapezoidal); short circuit in DC.
class Inductor final : public Element {
 public:
  Inductor(std::string name, int a, int b, double henries,
           double i_initial = 0.0);
  [[nodiscard]] int branch_count() const override { return 1; }
  void set_branch_base(std::size_t base) override { branch_ = base; }
  void stamp(MnaSystem& st, const Solution& x,
             const StampContext& ctx) const override;
  void stamp_ac(AcSystem& st, const Solution& op,
                double omega) const override;
  void commit(const Solution& x, const StampContext& ctx) override;
  void save_state() override;
  void restore_state() override;
  void reset() override;

 private:
  int a_, b_;
  double l_;
  double i0_;
  std::size_t branch_ = 0;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
  double saved_i_prev_ = 0.0;
  double saved_v_prev_ = 0.0;
  mutable StampSlots<5> slots_;
};

} // namespace mss::spice
