// Time-domain stimulus descriptions for independent sources: DC, PULSE,
// PWL and SIN — the subset of SPICE stimuli the paper's cell
// characterisation flow needs.
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace mss::spice {

/// Abstract stimulus: value as a function of time.
class Waveform {
 public:
  virtual ~Waveform() = default;
  /// Value at time t [s].
  [[nodiscard]] virtual double value(double t) const = 0;
  /// Appends the waveform's slope discontinuities in (0, t_stop) — the
  /// time points an adaptive transient must land on exactly so no source
  /// corner is stepped over. Default: none (DC, sine).
  virtual void breakpoints(double /*t_stop*/,
                           std::vector<double>& /*out*/) const {}
};

/// Constant value.
class DcWave final : public Waveform {
 public:
  explicit DcWave(double v) : v_(v) {}
  [[nodiscard]] double value(double) const override { return v_; }

 private:
  double v_;
};

/// SPICE PULSE(v1 v2 td tr tf pw per). A zero `per` means a single pulse.
class PulseWave final : public Waveform {
 public:
  PulseWave(double v1, double v2, double delay, double rise, double fall,
            double width, double period = 0.0);
  [[nodiscard]] double value(double t) const override;
  void breakpoints(double t_stop, std::vector<double>& out) const override;

 private:
  double v1_, v2_, delay_, rise_, fall_, width_, period_;
};

/// Piecewise-linear (time, value) pairs; clamps outside the span.
class PwlWave final : public Waveform {
 public:
  explicit PwlWave(std::vector<std::pair<double, double>> points);
  [[nodiscard]] double value(double t) const override;
  void breakpoints(double t_stop, std::vector<double>& out) const override;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// SIN(offset amplitude freq [delay [phase_rad]]).
class SineWave final : public Waveform {
 public:
  SineWave(double offset, double amplitude, double freq_hz, double delay = 0.0,
           double phase_rad = 0.0);
  [[nodiscard]] double value(double t) const override;

 private:
  double offset_, amplitude_, freq_, delay_, phase_;
};

} // namespace mss::spice
