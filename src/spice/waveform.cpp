#include "spice/waveform.hpp"

#include <cmath>
#include <stdexcept>

namespace mss::spice {

PulseWave::PulseWave(double v1, double v2, double delay, double rise,
                     double fall, double width, double period)
    : v1_(v1), v2_(v2), delay_(delay), rise_(rise), fall_(fall), width_(width),
      period_(period) {
  if (rise_ <= 0.0 || fall_ <= 0.0) {
    throw std::invalid_argument("PulseWave: rise/fall must be > 0");
  }
}

double PulseWave::value(double t) const {
  if (t < delay_) return v1_;
  double tt = t - delay_;
  if (period_ > 0.0) tt = std::fmod(tt, period_);
  if (tt < rise_) return v1_ + (v2_ - v1_) * (tt / rise_);
  tt -= rise_;
  if (tt < width_) return v2_;
  tt -= width_;
  if (tt < fall_) return v2_ + (v1_ - v2_) * (tt / fall_);
  return v1_;
}

void PulseWave::breakpoints(double t_stop, std::vector<double>& out) const {
  const auto push = [&](double t) {
    if (t > 0.0 && t < t_stop) out.push_back(t);
  };
  for (double t0 = delay_;; t0 += period_) {
    push(t0);
    push(t0 + rise_);
    push(t0 + rise_ + width_);
    push(t0 + rise_ + width_ + fall_);
    if (period_ <= 0.0 || t0 + period_ >= t_stop) break;
  }
}

PwlWave::PwlWave(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("PwlWave: empty");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first <= points_[i - 1].first) {
      throw std::invalid_argument("PwlWave: times must be increasing");
    }
  }
}

double PwlWave::value(double t) const {
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  std::size_t lo = 0, hi = points_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (points_[mid].first <= t)
      lo = mid;
    else
      hi = mid;
  }
  const auto [t0, v0] = points_[lo];
  const auto [t1, v1] = points_[hi];
  return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
}

void PwlWave::breakpoints(double t_stop, std::vector<double>& out) const {
  for (const auto& [t, v] : points_) {
    (void)v;
    if (t > 0.0 && t < t_stop) out.push_back(t);
  }
}

SineWave::SineWave(double offset, double amplitude, double freq_hz,
                   double delay, double phase_rad)
    : offset_(offset), amplitude_(amplitude), freq_(freq_hz), delay_(delay),
      phase_(phase_rad) {}

double SineWave::value(double t) const {
  if (t < delay_) return offset_ + amplitude_ * std::sin(phase_);
  return offset_ +
         amplitude_ * std::sin(2.0 * M_PI * freq_ * (t - delay_) + phase_);
}

} // namespace mss::spice
