// MDL — Measurement Descriptive Language.
//
// The paper's circuit flow (Sec. II/IV-A): "a template file is created for
// the netlist, stimulus and Measurement Descriptive Language (MDL) ...
// the SPICE simulation generates [an] output measurement file that is then
// parsed to extract the required cell level parameters such as switching
// current, delay and energy values."
//
// This module implements that pipeline stage: a small measurement language
// evaluated over a TransientResult, plus writer/parser for the textual
// measurement file the downstream tools consume.
//
// Script syntax (one statement per line, '#' comments):
//
//   meas <name> delay    trig <sig> val=<v> (rise|fall)=<n>
//                        targ <sig> val=<v> (rise|fall)=<n>
//   meas <name> avg      <sig> [from=<t>] [to=<t>]
//   meas <name> rms      <sig> [from=<t>] [to=<t>]
//   meas <name> min      <sig> [from=<t>] [to=<t>]
//   meas <name> max      <sig> [from=<t>] [to=<t>]
//   meas <name> pp       <sig> [from=<t>] [to=<t>]
//   meas <name> integral <sig> [from=<t>] [to=<t>]
//   meas <name> final    <sig>
//   meas <name> cross    <sig> val=<v> (rise|fall)=<n>
//
// where <sig> is v(<node>) or i(<vsource>) and numbers accept SPICE unit
// suffixes (f p n u m k meg g).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "spice/engine.hpp"

namespace mss::spice::mdl {

/// Crossing edge selector.
enum class Edge { Rise, Fall };

/// A level-crossing event spec: the `nth` crossing of `signal` through
/// `value` with the given edge.
struct CrossSpec {
  std::string signal; ///< "v(node)" or "i(source)"
  double value = 0.0;
  Edge edge = Edge::Rise;
  int nth = 1;
};

/// Measurement kinds supported by the language.
enum class Kind {
  Delay,    ///< time from trig crossing to targ crossing
  Avg,      ///< time average over the window
  Rms,      ///< root-mean-square over the window
  Min,      ///< minimum over the window
  Max,      ///< maximum over the window
  PeakToPeak, ///< max - min over the window
  Integral, ///< trapezoidal integral over the window
  Final,    ///< value at the last time point
  Cross,    ///< time of the nth crossing
};

/// One parsed measurement statement.
struct Measurement {
  std::string name;
  Kind kind = Kind::Avg;
  std::string signal;             ///< for non-delay kinds
  CrossSpec trig;                 ///< for Delay
  CrossSpec targ;                 ///< for Delay; also reused for Cross
  double from = 0.0;              ///< window start [s]
  double to = -1.0;               ///< window end [s]; < 0 means "end of run"
};

/// Evaluation outcome of one measurement.
struct MeasureResult {
  std::string name;
  double value = 0.0;
  bool valid = false; ///< false when e.g. the crossing never happened
};

/// A parsed MDL script.
class Script {
 public:
  /// Parses the textual form; throws std::invalid_argument with a line
  /// number on syntax errors.
  [[nodiscard]] static Script parse(const std::string& text);

  /// Programmatic construction.
  void add(Measurement m) { measurements_.push_back(std::move(m)); }

  /// The parsed statements.
  [[nodiscard]] const std::vector<Measurement>& measurements() const {
    return measurements_;
  }

  /// Evaluates every measurement over a transient result.
  [[nodiscard]] std::vector<MeasureResult> evaluate(
      const TransientResult& tr) const;

 private:
  std::vector<Measurement> measurements_;
};

/// Parses a SPICE-style number with optional unit suffix ("4.9n" = 4.9e-9).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] double parse_number(const std::string& token);

/// Extracts the waveform of "v(node)" / "i(source)" from a result.
/// Throws std::out_of_range for unknown signals.
[[nodiscard]] std::vector<double> signal_waveform(const TransientResult& tr,
                                                  const std::string& signal);

/// Time of the nth level crossing; nullopt when it never occurs.
[[nodiscard]] std::optional<double> cross_time(
    const std::vector<double>& times, const std::vector<double>& values,
    const CrossSpec& spec);

/// Renders the "output measurement file" (name = value lines).
[[nodiscard]] std::string write_measure_file(
    const std::vector<MeasureResult>& results);

/// Parses a measurement file back into a name -> value map, skipping
/// invalid entries — the downstream "File Parser" stage of the flow.
[[nodiscard]] std::map<std::string, double> parse_measure_file(
    const std::string& text);

} // namespace mss::spice::mdl
