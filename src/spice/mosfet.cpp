#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mss::spice {

namespace {
/// Shunt conductance added across D-S for Newton robustness.
constexpr double kGmin = 1e-9;
} // namespace

MosModel MosModel::nmos(double vth, double kp) {
  MosModel m;
  m.type = MosType::Nmos;
  m.vth = vth;
  m.kp = kp;
  return m;
}

MosModel MosModel::pmos(double vth, double kp) {
  MosModel m;
  m.type = MosType::Pmos;
  m.vth = vth;
  m.kp = kp;
  return m;
}

Mosfet::Mosfet(std::string name, int drain, int gate, int source,
               MosModel model, double width_m, double length_m)
    : Element(std::move(name)), d_(drain), g_(gate), s_(source), m_(model),
      w_(width_m), l_(length_m) {
  if (w_ <= 0.0 || l_ <= 0.0) {
    throw std::invalid_argument("Mosfet: non-positive W or L");
  }
}

void Mosfet::eval(double vgs, double vds, double& id, double& gm,
                  double& gds) const {
  // NMOS-referred with vds >= 0 (caller normalises polarity and orientation).
  const double beta = m_.kp * w_ / l_;
  const double vov = vgs - m_.vth;
  if (vov <= 0.0) {
    id = 0.0;
    gm = 0.0;
    gds = 0.0;
    return;
  }
  const double clm = 1.0 + m_.lambda * vds;
  if (vds < vov) {
    id = beta * (vov * vds - 0.5 * vds * vds) * clm;
    gm = beta * vds * clm;
    gds = beta * (vov - vds) * clm +
          beta * (vov * vds - 0.5 * vds * vds) * m_.lambda;
  } else {
    id = 0.5 * beta * vov * vov * clm;
    gm = beta * vov * clm;
    gds = 0.5 * beta * vov * vov * m_.lambda;
  }
}

double Mosfet::ids(double vgs, double vds) const {
  double sign = 1.0;
  if (m_.type == MosType::Pmos) {
    vgs = -vgs;
    vds = -vds;
    sign = -1.0;
  }
  bool swapped = false;
  if (vds < 0.0) {
    vgs = vgs - vds; // gate-to-(new source) with terminals exchanged
    vds = -vds;
    swapped = true;
  }
  double id, gm, gds;
  eval(vgs, vds, id, gm, gds);
  const double i_internal = swapped ? -id : id;
  return sign * i_internal;
}

void Mosfet::stamp(MnaSystem& st, const Solution& x,
                   const StampContext&) const {
  // Work in the NMOS-referred frame: negate voltages for PMOS, swap
  // drain/source so vds >= 0. In that frame the drain current is
  //   I = ieq + gm * (vg - v_ns) + gds * (v_nd - v_ns),
  // flowing out of node `nd` into node `ns`.
  //
  // Conductance stamps are identical for both polarities
  // (d(-i)/d(-v) = di/dv); only the equivalent current flips for PMOS.
  double vd = x.v(d_);
  double vg = x.v(g_);
  double vs = x.v(s_);
  double sign = 1.0;
  if (m_.type == MosType::Pmos) {
    vd = -vd;
    vg = -vg;
    vs = -vs;
    sign = -1.0;
  }
  int nd = d_, ns = s_;
  bool swapped = false;
  if (vd < vs) {
    std::swap(vd, vs);
    std::swap(nd, ns);
    swapped = true;
  }
  const double vgs = vg - vs;
  const double vds = vd - vs;
  double id, gm, gds;
  eval(vgs, vds, id, gm, gds);
  const double ieq = id - gm * vgs - gds * vds;

  // Row nd (current out), row ns (current in), with the convergence gmin
  // across the physical channel folded in. The position set is fixed —
  // the drain/source swap permutes the *values*, not the slots — so the
  // per-element slot cache stays valid for any bias polarity.
  const double g_dd = swapped ? gm + gds + kGmin : gds + kGmin;
  const double g_dg = swapped ? -gm : gm;
  const double g_ds = swapped ? -gds - kGmin : -(gm + gds) - kGmin;
  const double g_ss = swapped ? gds + kGmin : gm + gds + kGmin;
  const double g_sg = swapped ? gm : -gm;
  const double g_sd = swapped ? -(gm + gds) - kGmin : -gds - kGmin;
  st.add_all(slots_,
             {{{d_, d_}, {d_, g_}, {d_, s_}, {s_, d_}, {s_, g_}, {s_, s_}}},
             {g_dd, g_dg, g_ds, g_sd, g_sg, g_ss});
  // For NMOS the equivalent source is -ieq at nd / +ieq at ns; for PMOS the
  // physical drain current is the negated internal one, flipping the sign.
  st.add_rhs(nd, -sign * ieq);
  st.add_rhs(ns, sign * ieq);
}

void Mosfet::stamp_ac(AcSystem& st, const Solution& op, double) const {
  // Small-signal conductances at the DC operating point; same frame
  // normalisation as the large-signal stamp.
  double vd = op.v(d_);
  double vg = op.v(g_);
  double vs = op.v(s_);
  if (m_.type == MosType::Pmos) {
    vd = -vd;
    vg = -vg;
    vs = -vs;
  }
  int nd = d_, ns = s_;
  bool swapped = false;
  if (vd < vs) {
    std::swap(vd, vs);
    std::swap(nd, ns);
    swapped = true;
  }
  double id, gm, gds;
  eval(vg - vs, vd - vs, id, gm, gds);
  (void)id;
  using C = std::complex<double>;
  const double g_dd = swapped ? gm + gds + kGmin : gds + kGmin;
  const double g_dg = swapped ? -gm : gm;
  const double g_ds = swapped ? -(gds + kGmin) : -(gm + gds + kGmin);
  const double g_ss = swapped ? gds + kGmin : gm + gds + kGmin;
  const double g_sg = swapped ? gm : -gm;
  const double g_sd = swapped ? -(gm + gds + kGmin) : -(gds + kGmin);
  st.add_all(slots_,
             {{{d_, d_}, {d_, g_}, {d_, s_}, {s_, d_}, {s_, g_}, {s_, s_}}},
             {C(g_dd), C(g_dg), C(g_ds), C(g_sd), C(g_sg), C(g_ss)});
}

} // namespace mss::spice
