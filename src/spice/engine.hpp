// DC operating-point (Newton-Raphson) and transient analysis over a
// Circuit, with trapezoidal or backward-Euler integration.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/matrix.hpp"

namespace mss::spice {

/// Solver options.
struct EngineOptions {
  double vtol = 1e-6;      ///< Newton convergence: |dx| <= vtol*max(1,|x|)
  int max_newton = 200;    ///< Newton iteration cap per solve
  double gmin = 1e-12;     ///< node-to-ground shunt conductance
  double damping = 0.6;    ///< max voltage change per Newton step [V]
  Integrator method = Integrator::Trapezoidal;
};

/// DC solve outcome.
struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x; ///< unknown vector (node voltages + branch currents)
};

/// Stored transient waveforms with name-based signal access.
class TransientResult {
 public:
  /// Time points [s].
  [[nodiscard]] const std::vector<double>& times() const { return times_; }

  /// Voltage of a named node at step k.
  [[nodiscard]] double v(const std::string& node, std::size_t k) const;
  /// Complete voltage waveform of a named node.
  [[nodiscard]] std::vector<double> voltage(const std::string& node) const;
  /// Branch current through a named voltage source at step k
  /// (positive current flows from + through the source to -).
  [[nodiscard]] double i(const std::string& vsource, std::size_t k) const;
  /// Complete current waveform of a named voltage source.
  [[nodiscard]] std::vector<double> current(const std::string& vsource) const;
  /// True when the named signal exists ("v:<node>" or "i:<source>").
  [[nodiscard]] bool has_node(const std::string& node) const;
  [[nodiscard]] bool has_source(const std::string& vsource) const;
  /// Number of stored steps.
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  /// Whether every step converged.
  [[nodiscard]] bool converged() const { return converged_; }

 private:
  friend class Engine;
  std::vector<double> times_;
  std::vector<std::vector<double>> samples_;
  std::unordered_map<std::string, std::size_t> node_index_;
  std::unordered_map<std::string, std::size_t> source_branch_;
  bool converged_ = true;

  [[nodiscard]] std::size_t idx_of_node(const std::string& node) const;
  [[nodiscard]] std::size_t idx_of_source(const std::string& vsource) const;
};

/// The analysis driver. Borrows the circuit for its lifetime.
class Engine {
 public:
  explicit Engine(Circuit& circuit, EngineOptions options = {});

  /// DC operating point at t = 0 (capacitors open, waveforms evaluated at 0).
  [[nodiscard]] DcResult dc();

  /// Fixed-step transient from 0 to `t_stop`.
  /// When `use_initial_conditions` is true the run starts from x = 0 with
  /// element initial conditions (capacitor v0); otherwise a DC operating
  /// point is computed first and committed as the starting state.
  [[nodiscard]] TransientResult transient(double t_stop, double dt,
                                          bool use_initial_conditions = false);

 private:
  Circuit& ckt_;
  EngineOptions opt_;

  // Persistent solve workspace, sized once per dimension and reused across
  // every timestep and Newton iteration: the transient hot loop performs no
  // heap allocation after the first step.
  Matrix a_;                         ///< LU scratch / factorization
  std::vector<double> g_flat_;       ///< stamped conductance matrix
  std::vector<double> rhs_;          ///< stamped right-hand side
  std::vector<double> x_new_;        ///< solve output buffer
  std::vector<std::size_t> pivots_;  ///< LU pivot rows
  std::size_t ws_dim_ = 0;           ///< dimension the workspace is sized for

  // Dirty-stamp fast path for linear circuits: keep the last stamped matrix
  // next to its factorization and refactor only when the stamps change
  // (an O(dim^2) compare instead of the O(dim^3) factorization). Sources
  // only move the RHS, so a fixed-step linear transient factors twice —
  // the first (backward-Euler) step and the trapezoidal steady pattern.
  std::vector<double> g_cached_;
  bool lu_valid_ = false;

  /// (Re)sizes the workspace for `dim` unknowns; invalidates the LU cache.
  void ensure_workspace(std::size_t dim);

  /// One Newton solve at the given context; x is in/out. Returns converged.
  bool solve(std::vector<double>& x, const StampContext& ctx,
             std::size_t dim);
};

} // namespace mss::spice
