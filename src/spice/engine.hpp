// DC operating-point (Newton-Raphson) and transient analysis over a
// Circuit, with trapezoidal or backward-Euler integration. The linear
// algebra runs through the pluggable solver layer (solver.hpp): dense LU
// for cell-level netlists, sparse LU for array-level ones, selected
// automatically from the system dimension unless pinned by the options.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/solver.hpp"

namespace mss::spice {

/// Solver options.
struct EngineOptions {
  double vtol = 1e-6;      ///< Newton convergence: |dx| <= vtol*max(1,|x|)
  int max_newton = 200;    ///< Newton iteration cap per solve
  double gmin = 1e-12;     ///< node-to-ground shunt conductance
  double damping = 0.6;    ///< max voltage change per Newton step [V]
  Integrator method = Integrator::Trapezoidal;
  SolverKind solver = SolverKind::Auto; ///< linear-solver backend choice
};

/// DC solve outcome.
struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x; ///< unknown vector (node voltages + branch currents)
};

/// Stored transient waveforms with name-based signal access.
class TransientResult {
 public:
  /// Time points [s].
  [[nodiscard]] const std::vector<double>& times() const { return times_; }

  /// Voltage of a named node at step k.
  [[nodiscard]] double v(const std::string& node, std::size_t k) const;
  /// Complete voltage waveform of a named node.
  [[nodiscard]] std::vector<double> voltage(const std::string& node) const;
  /// Branch current through a named voltage source at step k
  /// (positive current flows from + through the source to -).
  [[nodiscard]] double i(const std::string& vsource, std::size_t k) const;
  /// Complete current waveform of a named voltage source.
  [[nodiscard]] std::vector<double> current(const std::string& vsource) const;
  /// True when the named signal exists ("v:<node>" or "i:<source>").
  [[nodiscard]] bool has_node(const std::string& node) const;
  [[nodiscard]] bool has_source(const std::string& vsource) const;
  /// Number of stored steps.
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  /// Whether every step converged.
  [[nodiscard]] bool converged() const { return converged_; }

 private:
  friend class Engine;
  std::vector<double> times_;
  std::vector<std::vector<double>> samples_;
  std::unordered_map<std::string, std::size_t> node_index_;
  std::unordered_map<std::string, std::size_t> source_branch_;
  bool converged_ = true;

  [[nodiscard]] std::size_t idx_of_node(const std::string& node) const;
  [[nodiscard]] std::size_t idx_of_source(const std::string& vsource) const;
};

/// The analysis driver. Borrows the circuit for its lifetime.
class Engine {
 public:
  explicit Engine(Circuit& circuit, EngineOptions options = {});

  /// DC operating point at t = 0 (capacitors open, waveforms evaluated at 0).
  [[nodiscard]] DcResult dc();

  /// Fixed-step transient from 0 to `t_stop`.
  /// When `use_initial_conditions` is true the run starts from x = 0 with
  /// element initial conditions (capacitor v0); otherwise a DC operating
  /// point is computed first and committed as the starting state.
  [[nodiscard]] TransientResult transient(double t_stop, double dt,
                                          bool use_initial_conditions = false);

  /// Name of the linear-solver backend in use ("dense" / "sparse";
  /// "unresolved" before the first solve when the options say Auto).
  [[nodiscard]] const char* solver_backend() const {
    return solver_ ? solver_->name() : "unresolved";
  }

  /// Numeric factorizations performed so far — the dirty-stamp cache
  /// observable (a linear fixed-step transient settles at two: the first
  /// backward-Euler step and the steady trapezoidal pattern).
  [[nodiscard]] std::size_t factor_count() const {
    return solver_ ? solver_->factor_count() : 0;
  }

 private:
  Circuit& ckt_;
  EngineOptions opt_;

  // Persistent solve state, sized once per dimension and reused across
  // every timestep and Newton iteration: the transient hot loop performs no
  // heap allocation after the first step. The solver owns the assembled
  // matrix, its factorization, and the dirty-stamp refactor cache.
  std::unique_ptr<LinearSolver> solver_;
  std::vector<double> rhs_;          ///< stamped right-hand side
  std::vector<double> x_new_;        ///< solve output buffer
  std::size_t ws_dim_ = 0;           ///< dimension the workspace is sized for

  /// (Re)sizes the workspace for `dim` unknowns, creating the backend the
  /// options select for that dimension.
  void ensure_workspace(std::size_t dim);

  /// One Newton solve at the given context; x is in/out. Returns converged.
  bool solve(std::vector<double>& x, const StampContext& ctx,
             std::size_t dim);
};

} // namespace mss::spice
