// DC operating-point (Newton-Raphson) and transient analysis over a
// Circuit, with trapezoidal or backward-Euler integration. Fixed-step
// transient plus an adaptive variant driven by a local-truncation-error
// step-doubling controller that lands exactly on source-waveform
// breakpoints. The linear algebra runs through the pluggable solver layer
// (solver.hpp): dense LU for cell-level netlists, sparse LU for
// array-level ones, selected automatically from the system dimension
// unless pinned by the options.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/solver.hpp"

namespace mss::spice {

/// Solver options.
struct EngineOptions {
  double vtol = 1e-6;      ///< Newton convergence: |dx| <= vtol*max(1,|x|)
  int max_newton = 200;    ///< Newton iteration cap per solve
  double gmin = 1e-12;     ///< node-to-ground shunt conductance
  double damping = 0.6;    ///< max voltage change per Newton step [V]
  Integrator method = Integrator::Trapezoidal;
  SolverKind solver = SolverKind::Auto; ///< linear-solver backend choice
  Ordering ordering = Ordering::Auto;   ///< sparse column-ordering policy
  /// Per-element stamp-slot caching: elements restamp by cached slot
  /// handle instead of (i, j) lookup. Bit-identical either way; off only
  /// for A/B validation.
  bool stamp_cache = true;
  /// Sparse partial refactorization (restart at the first changed pivot
  /// position). Bit-identical to full refactors; off only for A/B
  /// validation.
  bool partial_refactor = true;
  /// Sparse supernodal panels (SIMD rank-w column updates). Agrees with
  /// the scalar factorization to rounding; off is the scalar reference.
  bool supernodal = true;
  /// Assembly sharding: stamp elements into per-shard slot-indexed buffers
  /// on this many threads (1 = plain serial stamping, 0 = the global
  /// pool's width). Combination order is fixed by shard index, so the
  /// assembled values are bit-identical to the serial pass for circuits
  /// whose stamp groups (Element::stamp_group) partition the matrix slots.
  int assembly_threads = 1;
  /// Hierarchical Schur-complement partitioning: when `partition` maps
  /// every unknown to a block (>= 0) or the interface (-1) and the
  /// resolved backend is sparse, the engine solves block interiors
  /// independently and couples them through the dense interface system.
  /// Agrees with the flat sparse solve to rounding.
  bool partitioned = false;
  std::vector<std::int32_t> partition; ///< unknown -> block id / -1
  /// Concurrency of the Schur block phases (0 = the global pool's width,
  /// 1 = serial, N = N threads). Bit-identical for every setting: blocks
  /// compute independently and combine in block order.
  int partition_threads = 0;
};

/// How Engine::transient_adaptive estimates the local truncation error.
enum class LteEstimator {
  /// One full step against two half steps (the half result is kept).
  /// Three Newton solves per accepted step; the reference estimator.
  StepDoubling,
  /// Compare the corrector against the explicit linear predictor
  /// extrapolated from the previous accepted step. One Newton solve per
  /// accepted step (~2x cheaper than step doubling); the very first step
  /// falls back to step doubling because no history exists yet.
  Predictor,
};

/// Controller knobs of the adaptive transient (Engine::transient_adaptive).
struct AdaptiveOptions {
  double ltol_rel = 1e-3;  ///< per-step relative local-truncation tolerance
  double ltol_abs = 1e-6;  ///< absolute floor of the error weight [V]
  double dt_min = 0.0;     ///< smallest step; 0 = dt_initial / 1024
  double dt_max = 0.0;     ///< largest step; 0 = max(dt_initial, t_stop/16)
  double grow_limit = 2.0; ///< max step growth per accepted step
  double safety = 0.9;     ///< controller safety factor
  /// Integrator of the controlled run. Backward Euler by default: it is
  /// L-stable, so the step-doubling error estimate decays for the stiff
  /// parasitic modes of array netlists. Trapezoidal rings at dt >> tau
  /// (amplification factor -> -1), which keeps the estimate above any
  /// tolerance and pins the controller at dt_min — pick it only for
  /// mildly stiff circuits where its second order pays off.
  Integrator method = Integrator::BackwardEuler;
  /// Error estimator; step doubling is the A/B reference.
  LteEstimator estimator = LteEstimator::StepDoubling;
};

/// DC solve outcome.
struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x; ///< unknown vector (node voltages + branch currents)
};

/// Stored transient waveforms with name-based signal access.
class TransientResult {
 public:
  /// Time points [s].
  [[nodiscard]] const std::vector<double>& times() const { return times_; }

  /// Voltage of a named node at step k.
  [[nodiscard]] double v(const std::string& node, std::size_t k) const;
  /// Voltage of a named node at time t, linearly interpolated between the
  /// stored samples (clamped at the run's ends) — the way to compare
  /// adaptive-step waveforms against a fixed-step reference grid.
  [[nodiscard]] double v_at(const std::string& node, double t) const;
  /// Complete voltage waveform of a named node.
  [[nodiscard]] std::vector<double> voltage(const std::string& node) const;
  /// Branch current through a named voltage source at step k
  /// (positive current flows from + through the source to -).
  [[nodiscard]] double i(const std::string& vsource, std::size_t k) const;
  /// Complete current waveform of a named voltage source.
  [[nodiscard]] std::vector<double> current(const std::string& vsource) const;
  /// True when the named signal exists ("v:<node>" or "i:<source>").
  [[nodiscard]] bool has_node(const std::string& node) const;
  [[nodiscard]] bool has_source(const std::string& vsource) const;
  /// Number of stored steps.
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  /// Whether every step converged.
  [[nodiscard]] bool converged() const { return converged_; }
  /// Accepted steps (== size() - 1 for both transient flavours).
  [[nodiscard]] std::size_t accepted_steps() const {
    return times_.empty() ? 0 : times_.size() - 1;
  }
  /// Steps the adaptive controller rejected and retried (0 in fixed-step).
  [[nodiscard]] std::size_t rejected_steps() const { return rejected_; }

 private:
  friend class Engine;
  std::vector<double> times_;
  std::vector<std::vector<double>> samples_;
  std::unordered_map<std::string, std::size_t> node_index_;
  std::unordered_map<std::string, std::size_t> source_branch_;
  bool converged_ = true;
  std::size_t rejected_ = 0;

  [[nodiscard]] std::size_t idx_of_node(const std::string& node) const;
  [[nodiscard]] std::size_t idx_of_source(const std::string& vsource) const;
};

/// The analysis driver. Borrows the circuit for its lifetime.
class Engine {
 public:
  explicit Engine(Circuit& circuit, EngineOptions options = {});

  /// DC operating point at t = 0 (capacitors open, waveforms evaluated at 0).
  [[nodiscard]] DcResult dc();

  /// Fixed-step transient from 0 to `t_stop`.
  /// When `use_initial_conditions` is true the run starts from x = 0 with
  /// element initial conditions (capacitor v0); otherwise a DC operating
  /// point is computed first and committed as the starting state.
  [[nodiscard]] TransientResult transient(double t_stop, double dt,
                                          bool use_initial_conditions = false);

  /// Adaptive transient from 0 to `t_stop`, starting at `dt_initial`.
  /// Local truncation error is estimated by step doubling (one full step
  /// vs two half steps; the half-step result is kept), steps halve on
  /// rejection and grow up to `grow_limit` on easy acceptance, and the
  /// stepper lands exactly on every source-waveform breakpoint (pulse and
  /// PWL corners) and on `t_stop`, so no stimulus edge is stepped over.
  [[nodiscard]] TransientResult transient_adaptive(
      double t_stop, double dt_initial, AdaptiveOptions adaptive = {},
      bool use_initial_conditions = false);

  /// Name of the linear-solver backend in use ("dense" / "sparse";
  /// "unresolved" before the first solve when the options say Auto).
  [[nodiscard]] const char* solver_backend() const {
    return solver_ ? solver_->name() : "unresolved";
  }

  /// Numeric factorizations performed so far — the dirty-stamp cache
  /// observable (a linear fixed-step transient settles at three: DC
  /// operating point, first backward-Euler step, steady trapezoidal
  /// pattern).
  [[nodiscard]] std::size_t factor_count() const {
    return solver_ ? solver_->factor_count() : 0;
  }

  /// Total columns numerically factored — the partial-refactorization
  /// observable (full refactors contribute `dim` each; sparse partial
  /// refactors contribute only the recomputed suffix).
  [[nodiscard]] std::size_t factor_cols_total() const {
    return solver_ ? solver_->factor_cols_total() : 0;
  }

  /// Supernodal panels / panel-covered columns of the last factorization.
  [[nodiscard]] std::size_t supernode_count() const {
    return solver_ ? solver_->supernode_count() : 0;
  }
  [[nodiscard]] std::size_t supernode_cols() const {
    return solver_ ? solver_->supernode_cols() : 0;
  }

  /// The live backend, for white-box tests (nullptr before the first
  /// solve).
  [[nodiscard]] const LinearSolver* linear_solver() const {
    return solver_.get();
  }

 private:
  Circuit& ckt_;
  EngineOptions opt_;

  // Persistent solve state, sized once per dimension and reused across
  // every timestep and Newton iteration: the transient hot loop performs no
  // heap allocation after the first step. The solver owns the assembled
  // matrix, its factorization, and the dirty-stamp refactor cache.
  std::unique_ptr<LinearSolver> solver_;
  std::vector<double> rhs_;          ///< stamped right-hand side
  std::vector<double> x_new_;        ///< solve output buffer
  std::size_t ws_dim_ = 0;           ///< dimension the workspace is sized for

  // Cached gmin diagonal slots (invalidated via the solver stamp epoch).
  GminSlotCache gmin_slots_;

  // Sharded-assembly scratch: per-shard slot-value and rhs buffers plus
  // the element -> shard map (rebuilt when the element count changes).
  std::vector<std::vector<double>> shard_vals_;
  std::vector<std::vector<double>> shard_rhs_;
  std::vector<std::uint32_t> shard_of_elem_;
  std::size_t shard_elem_count_ = 0;

  /// (Re)sizes the workspace for `dim` unknowns, creating the backend the
  /// options select for that dimension.
  void ensure_workspace(std::size_t dim);

  /// Sharded element stamping into per-shard buffers, combined in shard
  /// order. Returns false when any shard missed (cold caches / first pass
  /// on a new pattern) — the caller restamps serially, which warms every
  /// cache for the next attempt.
  bool stamp_sharded(const Solution& sol, const StampContext& ctx,
                     std::size_t dim, int threads);

  /// One Newton solve at the given context; x is in/out. Returns converged.
  bool solve(std::vector<double>& x, const StampContext& ctx,
             std::size_t dim);

  /// Fills the result's node/source lookup maps.
  void init_result_maps(TransientResult& res) const;

  /// Commits every element for an accepted step.
  void commit_all(const std::vector<double>& x, const StampContext& ctx);
};

} // namespace mss::spice
