#include "spice/elements.hpp"

#include <stdexcept>

namespace mss::spice {

namespace {

/// The (a,a),(b,b),(a,b),(b,a) position quad every two-terminal
/// conductance stamps.
[[nodiscard]] constexpr std::array<std::pair<int, int>, 4> quad_pos(int a,
                                                                    int b) {
  return {{{a, a}, {b, b}, {a, b}, {b, a}}};
}

} // namespace

Resistor::Resistor(std::string name, int a, int b, double ohms)
    : Element(std::move(name)), a_(a), b_(b), r_(ohms) {
  if (r_ <= 0.0) throw std::invalid_argument("Resistor: non-positive value");
}

void Resistor::stamp(MnaSystem& st, const Solution&, const StampContext&) const {
  const double g = 1.0 / r_;
  st.add_all(slots_, quad_pos(a_, b_), {g, g, -g, -g});
}

void Resistor::stamp_ac(AcSystem& st, const Solution&, double) const {
  const std::complex<double> g(1.0 / r_, 0.0);
  st.add_all(slots_, quad_pos(a_, b_), {g, g, -g, -g});
}

Capacitor::Capacitor(std::string name, int a, int b, double farads,
                     double v_initial)
    : Element(std::move(name)), a_(a), b_(b), c_(farads), v0_(v_initial),
      v_prev_(v_initial) {
  if (c_ <= 0.0) throw std::invalid_argument("Capacitor: non-positive value");
}

void Capacitor::reset() {
  v_prev_ = v0_;
  i_prev_ = 0.0;
}

void Capacitor::save_state() {
  saved_v_prev_ = v_prev_;
  saved_i_prev_ = i_prev_;
}

void Capacitor::restore_state() {
  v_prev_ = saved_v_prev_;
  i_prev_ = saved_i_prev_;
}

void Capacitor::stamp(MnaSystem& st, const Solution&,
                      const StampContext& ctx) const {
  if (ctx.kind == AnalysisKind::Dc || ctx.dt <= 0.0) return; // open in DC
  const bool trap =
      ctx.method == Integrator::Trapezoidal && !ctx.first_step;
  const double geq = trap ? 2.0 * c_ / ctx.dt : c_ / ctx.dt;
  const double ieq = trap ? geq * v_prev_ + i_prev_ : geq * v_prev_;
  st.add_all(slots_, quad_pos(a_, b_), {geq, geq, -geq, -geq});
  st.add_rhs(a_, ieq);
  st.add_rhs(b_, -ieq);
}

void Capacitor::commit(const Solution& x, const StampContext& ctx) {
  if (ctx.kind == AnalysisKind::Dc || ctx.dt <= 0.0) {
    v_prev_ = x.v(a_) - x.v(b_);
    i_prev_ = 0.0;
    return;
  }
  const bool trap =
      ctx.method == Integrator::Trapezoidal && !ctx.first_step;
  const double geq = trap ? 2.0 * c_ / ctx.dt : c_ / ctx.dt;
  const double v_now = x.v(a_) - x.v(b_);
  const double ieq = trap ? geq * v_prev_ + i_prev_ : geq * v_prev_;
  i_prev_ = geq * v_now - ieq; // current through the capacitor at t
  v_prev_ = v_now;
}

void Capacitor::stamp_ac(AcSystem& st, const Solution&,
                         double omega) const {
  const std::complex<double> y(0.0, omega * c_);
  st.add_all(slots_, quad_pos(a_, b_), {y, y, -y, -y});
}

VoltageSource::VoltageSource(std::string name, int plus, int minus,
                             std::unique_ptr<Waveform> wave)
    : Element(std::move(name)), plus_(plus), minus_(minus),
      wave_(std::move(wave)) {
  if (!wave_) throw std::invalid_argument("VoltageSource: null waveform");
}

void VoltageSource::stamp(MnaSystem& st, const Solution&,
                          const StampContext& ctx) const {
  const int br = static_cast<int>(branch_);
  // KCL rows: current leaves + node, enters - node; branch row:
  // v(+) - v(-) = V(t).
  st.add_all(slots_,
             {{{plus_, br}, {minus_, br}, {br, plus_}, {br, minus_}}},
             {1.0, -1.0, 1.0, -1.0});
  st.add_rhs(br, wave_->value(ctx.t));
}

void VoltageSource::stamp_ac(AcSystem& st, const Solution&,
                             double) const {
  const int br = static_cast<int>(branch_);
  st.add_all(slots_,
             {{{plus_, br}, {minus_, br}, {br, plus_}, {br, minus_}}},
             {std::complex<double>(1.0), std::complex<double>(-1.0),
              std::complex<double>(1.0), std::complex<double>(-1.0)});
  st.add_rhs(br, std::complex<double>(ac_mag_, 0.0));
}

void VoltageSource::append_breakpoints(double t_stop,
                                       std::vector<double>& out) const {
  wave_->breakpoints(t_stop, out);
}

CurrentSource::CurrentSource(std::string name, int plus, int minus,
                             std::unique_ptr<Waveform> wave)
    : Element(std::move(name)), plus_(plus), minus_(minus),
      wave_(std::move(wave)) {
  if (!wave_) throw std::invalid_argument("CurrentSource: null waveform");
}

void CurrentSource::stamp(MnaSystem& st, const Solution&,
                          const StampContext& ctx) const {
  const double i = wave_->value(ctx.t);
  // Positive current flows + -> (through source) -> -: leaves node +,
  // is injected into node -.
  st.add_rhs(plus_, -i);
  st.add_rhs(minus_, i);
}

void CurrentSource::append_breakpoints(double t_stop,
                                       std::vector<double>& out) const {
  wave_->breakpoints(t_stop, out);
}

Switch::Switch(std::string name, int a, int b, int ctrl_p, int ctrl_n,
               double threshold, double r_on, double r_off)
    : Element(std::move(name)), a_(a), b_(b), cp_(ctrl_p), cn_(ctrl_n),
      vth_(threshold), r_on_(r_on), r_off_(r_off) {
  if (r_on_ <= 0.0 || r_off_ <= r_on_) {
    throw std::invalid_argument("Switch: need 0 < r_on < r_off");
  }
}

void Switch::stamp(MnaSystem& st, const Solution& x,
                   const StampContext&) const {
  const double vc = x.v(cp_) - x.v(cn_);
  const double g = vc > vth_ ? 1.0 / r_on_ : 1.0 / r_off_;
  st.add_all(slots_, quad_pos(a_, b_), {g, g, -g, -g});
}

void Switch::stamp_ac(AcSystem& st, const Solution& op, double) const {
  const double vc = op.v(cp_) - op.v(cn_);
  const std::complex<double> g(vc > vth_ ? 1.0 / r_on_ : 1.0 / r_off_, 0.0);
  st.add_all(slots_, quad_pos(a_, b_), {g, g, -g, -g});
}

} // namespace mss::spice
