#include "spice/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/simd.hpp"

namespace mss::spice {

namespace {

/// Symmetrised, deduplicated adjacency (diagonal excluded) of a CSC
/// pattern, in compact CSR form — the graph all three ordering routines
/// walk. adj[ptr[v] .. ptr[v] + deg[v]) are the sorted neighbours of v.
struct SymAdjacency {
  std::vector<std::uint32_t> ptr;
  std::vector<std::uint32_t> adj;
  std::vector<std::uint32_t> deg;
};

[[nodiscard]] SymAdjacency symmetrized_adjacency(
    std::size_t dim, const std::vector<std::uint32_t>& col_ptr,
    const std::vector<std::uint32_t>& row_ind) {
  if (col_ptr.size() != dim + 1) {
    throw std::invalid_argument("sparse ordering: bad column pointer array");
  }
  const auto n = static_cast<std::uint32_t>(dim);
  SymAdjacency out;
  out.deg.assign(dim, 0);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const std::uint32_t r = row_ind[p];
      if (r == c) continue;
      ++out.deg[r];
      ++out.deg[c];
    }
  }
  out.ptr.assign(dim + 1, 0);
  for (std::size_t v = 0; v < dim; ++v) {
    out.ptr[v + 1] = out.ptr[v] + out.deg[v];
  }
  out.adj.resize(out.ptr[dim]);
  {
    std::vector<std::uint32_t> fill = out.ptr;
    for (std::uint32_t c = 0; c < n; ++c) {
      for (std::uint32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
        const std::uint32_t r = row_ind[p];
        if (r == c) continue;
        out.adj[fill[r]++] = c;
        out.adj[fill[c]++] = r;
      }
    }
  }
  for (std::size_t v = 0; v < dim; ++v) {
    const auto b = out.adj.begin() + out.ptr[v];
    const auto e = out.adj.begin() + out.ptr[v] + out.deg[v];
    std::sort(b, e);
    const auto last = std::unique(b, e);
    out.deg[v] = static_cast<std::uint32_t>(last - b);
  }
  return out;
}

// Internal variants take a prebuilt adjacency so Ordering::Auto can run
// RCM, AMD, and both fill predictions off one graph construction.
[[nodiscard]] std::vector<std::uint32_t> rcm_from_adjacency(
    std::size_t dim, const SymAdjacency& g);
[[nodiscard]] std::vector<std::uint32_t> amd_from_adjacency(
    std::size_t dim, const SymAdjacency& g);
[[nodiscard]] std::size_t fill_from_adjacency(
    std::size_t dim, const SymAdjacency& g,
    const std::vector<std::uint32_t>& order);

} // namespace

// ---------------------------------------------------------------------------
// Reverse-Cuthill-McKee ordering
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> rcm_order(std::size_t dim,
                                     const std::vector<std::uint32_t>& col_ptr,
                                     const std::vector<std::uint32_t>& row_ind) {
  return rcm_from_adjacency(dim, symmetrized_adjacency(dim, col_ptr, row_ind));
}

namespace {

std::vector<std::uint32_t> rcm_from_adjacency(std::size_t dim,
                                              const SymAdjacency& g) {
  const auto n = static_cast<std::uint32_t>(dim);

  std::vector<std::uint8_t> visited(dim, 0);
  std::vector<std::uint32_t> order;
  order.reserve(dim);
  std::vector<std::uint32_t> frontier, next;

  // Plain BFS used both for the pseudo-peripheral search and the CM sweep.
  const auto bfs = [&](std::uint32_t seed, bool record) -> std::uint32_t {
    std::vector<std::uint8_t> seen(dim, 0);
    seen[seed] = 1;
    frontier.assign(1, seed);
    std::uint32_t last_min_deg = seed;
    while (!frontier.empty()) {
      next.clear();
      for (const std::uint32_t v : frontier) {
        if (record) order.push_back(v);
        // Neighbours in ascending-degree order — the Cuthill-McKee rule.
        const std::uint32_t b = g.ptr[v];
        std::vector<std::uint32_t> nbrs(g.adj.begin() + b,
                                        g.adj.begin() + b + g.deg[v]);
        std::sort(nbrs.begin(), nbrs.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                    return g.deg[x] != g.deg[y] ? g.deg[x] < g.deg[y] : x < y;
                  });
        for (const std::uint32_t w : nbrs) {
          if (!seen[w]) {
            seen[w] = 1;
            next.push_back(w);
          }
        }
      }
      if (!next.empty()) {
        last_min_deg = *std::min_element(
            next.begin(), next.end(), [&](std::uint32_t x, std::uint32_t y) {
              return g.deg[x] != g.deg[y] ? g.deg[x] < g.deg[y] : x < y;
            });
      }
      frontier.swap(next);
    }
    if (record) {
      for (const std::uint32_t v : order) visited[v] = 1;
    }
    return last_min_deg;
  };

  for (std::uint32_t v0 = 0; v0 < n; ++v0) {
    if (visited[v0]) continue;
    // Pseudo-peripheral seed: two BFS hops towards an eccentric vertex.
    std::uint32_t seed = v0;
    seed = bfs(seed, /*record=*/false);
    seed = bfs(seed, /*record=*/false);
    bfs(seed, /*record=*/true);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

} // namespace

// ---------------------------------------------------------------------------
// Approximate-minimum-degree ordering
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> amd_order(std::size_t dim,
                                     const std::vector<std::uint32_t>& col_ptr,
                                     const std::vector<std::uint32_t>& row_ind) {
  return amd_from_adjacency(dim, symmetrized_adjacency(dim, col_ptr, row_ind));
}

namespace {

std::vector<std::uint32_t> amd_from_adjacency(std::size_t dim,
                                              const SymAdjacency& g) {
  const auto n = static_cast<std::uint32_t>(dim);

  // Quotient-graph state. Eliminating v turns it into an *element* whose
  // pivot list covers v's live neighbourhood; variables keep a list of
  // plain variable neighbours (avars) and adjacent elements (aelems).
  std::vector<std::vector<std::uint32_t>> avars(dim), aelems(dim);
  std::vector<std::vector<std::uint32_t>> elem_vars; // by element id
  std::vector<std::uint8_t> absorbed;                // by element id
  for (std::uint32_t v = 0; v < n; ++v) {
    avars[v].assign(g.adj.begin() + g.ptr[v],
                    g.adj.begin() + g.ptr[v] + g.deg[v]);
  }

  std::vector<std::uint32_t> adeg(dim);
  for (std::size_t v = 0; v < dim; ++v) adeg[v] = g.deg[v];

  // Lazy min-heap of (degree, vertex); stale entries are skipped on pop.
  using Entry = std::pair<std::uint32_t, std::uint32_t>;
  std::vector<Entry> heap;
  heap.reserve(dim);
  const auto cmp = std::greater<Entry>();
  for (std::uint32_t v = 0; v < n; ++v) heap.emplace_back(adeg[v], v);
  std::make_heap(heap.begin(), heap.end(), cmp);

  std::vector<std::uint8_t> eliminated(dim, 0);
  std::vector<std::uint32_t> stamp(dim, 0);
  std::uint32_t stamp_ctr = 0;
  std::vector<std::uint32_t> order;
  order.reserve(dim);
  std::vector<std::uint32_t> lv; // pivot list of the element being formed

  while (order.size() < dim) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, v] = heap.back();
    heap.pop_back();
    if (eliminated[v] || d != adeg[v]) continue; // stale entry

    // Element list Lv = live neighbourhood of v: plain variable
    // neighbours plus the members of every adjacent element.
    ++stamp_ctr;
    stamp[v] = stamp_ctr;
    lv.clear();
    for (const std::uint32_t u : avars[v]) {
      if (!eliminated[u] && stamp[u] != stamp_ctr) {
        stamp[u] = stamp_ctr;
        lv.push_back(u);
      }
    }
    for (const std::uint32_t e : aelems[v]) {
      for (const std::uint32_t u : elem_vars[e]) {
        if (!eliminated[u] && u != v && stamp[u] != stamp_ctr) {
          stamp[u] = stamp_ctr;
          lv.push_back(u);
        }
      }
    }
    // Absorb the elements v was attached to — their cliques are subsumed
    // by the new element.
    for (const std::uint32_t e : aelems[v]) {
      absorbed[e] = 1;
      elem_vars[e].clear();
      elem_vars[e].shrink_to_fit();
    }
    const auto eid = static_cast<std::uint32_t>(elem_vars.size());
    elem_vars.push_back(lv);
    absorbed.push_back(0);
    eliminated[v] = 1;
    order.push_back(v);

    // Update each member of the new element: prune variable neighbours now
    // covered by the element (v itself and every other Lv member), drop
    // absorbed elements, attach the new one, and recompute the
    // approximate degree |avars| + sum of adjacent element sizes (minus
    // self per element) — the classic AMD overcount bound.
    for (const std::uint32_t u : lv) {
      auto& av = avars[u];
      av.erase(std::remove_if(av.begin(), av.end(),
                              [&](std::uint32_t w) {
                                return eliminated[w] || stamp[w] == stamp_ctr;
                              }),
               av.end());
      auto& ae = aelems[u];
      ae.erase(std::remove_if(ae.begin(), ae.end(),
                              [&](std::uint32_t e) { return absorbed[e] != 0; }),
               ae.end());
      ae.push_back(eid);
      std::size_t deg_u = av.size();
      for (const std::uint32_t e : ae) deg_u += elem_vars[e].size() - 1;
      adeg[u] = static_cast<std::uint32_t>(
          std::min<std::size_t>(deg_u, dim == 0 ? 0 : dim - 1));
      heap.emplace_back(adeg[u], u);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  return order;
}

} // namespace

// ---------------------------------------------------------------------------
// Symbolic fill prediction
// ---------------------------------------------------------------------------

std::size_t symbolic_fill(std::size_t dim,
                          const std::vector<std::uint32_t>& col_ptr,
                          const std::vector<std::uint32_t>& row_ind,
                          const std::vector<std::uint32_t>& order) {
  if (order.size() != dim) {
    throw std::invalid_argument("symbolic_fill: order size mismatch");
  }
  return fill_from_adjacency(dim, symmetrized_adjacency(dim, col_ptr, row_ind),
                             order);
}

namespace {

std::size_t fill_from_adjacency(std::size_t dim, const SymAdjacency& g,
                                const std::vector<std::uint32_t>& order) {
  std::vector<std::uint32_t> pos(dim);
  for (std::uint32_t k = 0; k < dim; ++k) pos[order[k]] = k;

  // George-Liu row-structure walk: row k of L holds the nodes on the
  // elimination-tree paths from each below-diagonal neighbour up towards
  // k; the tree is built on the fly (parent set at first discovery).
  std::vector<std::int32_t> parent(dim, -1);
  std::vector<std::int32_t> mark(dim, -1);
  std::size_t nnz_l = dim; // diagonal
  for (std::uint32_t k = 0; k < dim; ++k) {
    const std::uint32_t v = order[k];
    mark[k] = static_cast<std::int32_t>(k);
    for (std::uint32_t p = g.ptr[v]; p < g.ptr[v] + g.deg[v]; ++p) {
      std::uint32_t j = pos[g.adj[p]];
      if (j >= k) continue;
      while (mark[j] != static_cast<std::int32_t>(k)) {
        mark[j] = static_cast<std::int32_t>(k);
        ++nnz_l;
        if (parent[j] < 0) {
          parent[j] = static_cast<std::int32_t>(k);
          break;
        }
        j = static_cast<std::uint32_t>(parent[j]);
      }
    }
  }
  return nnz_l;
}

// ---------------------------------------------------------------------------
// Supernodal panel kernel
// ---------------------------------------------------------------------------

/// Panel width cap. Wider panels amortise better but recompute more on a
/// partial restart (restarts snap to panel boundaries); 32 columns keeps a
/// panel column comfortably inside L1 at array-scale below-block sizes.
constexpr std::size_t kMaxPanelWidth = 32;

/// acc[0..n) += col[0..n) * u over the portable Batch lanes. Lane-wise
/// identical to the scalar loop (Batch has no horizontal ops), so the
/// supernodal path's rounding difference vs the scalar path comes only
/// from the panel-level accumulation order, never from this kernel.
template <typename T>
inline void axpy_batched(T* acc, const T* col, T u, std::size_t n) {
  constexpr std::size_t W = 4;
  using Bt = mss::util::Batch<T, W>;
  std::size_t k = 0;
  for (; k + W <= n; k += W) {
    Bt a{};
    Bt c{};
    for (std::size_t l = 0; l < W; ++l) a.lane[l] = acc[k + l];
    for (std::size_t l = 0; l < W; ++l) c.lane[l] = col[k + l];
    a += c * u;
    for (std::size_t l = 0; l < W; ++l) acc[k + l] = a.lane[l];
  }
  for (; k < n; ++k) acc[k] += col[k] * u;
}

/// Rank-4 fused update: acc += c0*u0 + c1*u1 + c2*u2 + c3*u3 in one pass.
/// Four times fewer accumulator loads/stores per flop than four rank-1
/// passes — the rank-1 AXPY has the same memory traffic as the scalar
/// left-looking scatter loop, so the fusion is where the panel path's
/// actual arithmetic-intensity advantage comes from. Per element the
/// additions run in the same order as the sequential rank-1 passes
/// (u0 first, u3 last), so the result is bit-identical to them.
template <typename T>
inline void axpy4_batched(T* acc, const T* const* cols, const T* u,
                          std::size_t n) {
  constexpr std::size_t W = 4;
  using Bt = mss::util::Batch<T, W>;
  const T* c0 = cols[0];
  const T* c1 = cols[1];
  const T* c2 = cols[2];
  const T* c3 = cols[3];
  const T u0 = u[0], u1 = u[1], u2 = u[2], u3 = u[3];
  std::size_t k = 0;
  for (; k + W <= n; k += W) {
    Bt a{};
    Bt c{};
    for (std::size_t l = 0; l < W; ++l) a.lane[l] = acc[k + l];
    for (std::size_t l = 0; l < W; ++l) c.lane[l] = c0[k + l];
    a += c * u0;
    for (std::size_t l = 0; l < W; ++l) c.lane[l] = c1[k + l];
    a += c * u1;
    for (std::size_t l = 0; l < W; ++l) c.lane[l] = c2[k + l];
    a += c * u2;
    for (std::size_t l = 0; l < W; ++l) c.lane[l] = c3[k + l];
    a += c * u3;
    for (std::size_t l = 0; l < W; ++l) acc[k + l] = a.lane[l];
  }
  for (; k < n; ++k) {
    T a = acc[k];
    a += c0[k] * u0;
    a += c1[k] * u1;
    a += c2[k] * u2;
    a += c3[k] * u3;
    acc[k] = a;
  }
}

/// Runtime-dispatched wrappers of the real-valued rank-1/rank-4 updates
/// (the supernodal hot loop); the complex AC instantiation keeps the
/// portable path (target_clones does not apply to templates).
MSS_SIMD_CLONES
void panel_axpy(double* acc, const double* col, double u, std::size_t n) {
  axpy_batched(acc, col, u, n);
}

void panel_axpy(std::complex<double>* acc, const std::complex<double>* col,
                std::complex<double> u, std::size_t n) {
  axpy_batched(acc, col, u, n);
}

MSS_SIMD_CLONES
void panel_axpy4(double* acc, const double* const* cols, const double* u,
                 std::size_t n) {
  axpy4_batched(acc, cols, u, n);
}

void panel_axpy4(std::complex<double>* acc,
                 const std::complex<double>* const* cols,
                 const std::complex<double>* u, std::size_t n) {
  axpy4_batched(acc, cols, u, n);
}

} // namespace

// ---------------------------------------------------------------------------
// SparseSolverT
// ---------------------------------------------------------------------------

template <typename T>
SparseSolverT<T>::SparseSolverT(double pivot_tol) : tol_(pivot_tol) {
  if (tol_ <= 0.0 || tol_ > 1.0) {
    throw std::invalid_argument("SparseSolverT: pivot_tol must be in (0, 1]");
  }
}

template <typename T>
void SparseSolverT<T>::set_ordering(Ordering ordering) {
  if (ordering == ordering_) return;
  ordering_ = ordering;
  pattern_dirty_ = true; // re-run the symbolic phase under the new policy
}

template <typename T>
void SparseSolverT<T>::set_supernodal(bool enabled) {
  if (enabled == supernodal_) return;
  supernodal_ = enabled;
  // The two modes agree only to rounding, so a partial restart must never
  // reuse a prefix factored under the other mode.
  factor_valid_ = false;
}

template <typename T>
void SparseSolverT<T>::set_markowitz(bool enabled) {
  if (enabled == markowitz_) return;
  markowitz_ = enabled;
  factor_valid_ = false; // different pivot sequence: no prefix reuse
}

template <typename T>
void SparseSolverT<T>::begin(std::size_t dim) {
  if (dim != dim_) {
    dim_ = dim;
    slot_of_.clear();
    slot_row_.clear();
    slot_col_.clear();
    vals_.clear();
    pattern_dirty_ = true;
    factor_valid_ = false;
    this->bump_epoch(); // outstanding slot handles are now meaningless
  }
  std::fill(vals_.begin(), vals_.end(), T{});
}

template <typename T>
std::uint32_t SparseSolverT<T>::slot(std::size_t i, std::size_t j) {
  const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) |
                            static_cast<std::uint64_t>(j);
  const auto [it, inserted] =
      slot_of_.try_emplace(key, static_cast<std::uint32_t>(slot_row_.size()));
  if (inserted) {
    slot_row_.push_back(static_cast<std::uint32_t>(i));
    slot_col_.push_back(static_cast<std::uint32_t>(j));
    vals_.push_back(T{});
    pattern_dirty_ = true;
  }
  return it->second;
}

template <typename T>
void SparseSolverT<T>::add(std::size_t i, std::size_t j, T v) {
  vals_[slot(i, j)] += v;
}

template <typename T>
void SparseSolverT<T>::rebuild_symbolic() {
  const std::size_t nnz = slot_row_.size();
  // Sort slots by (col, row) to obtain the CSC layout and the slot -> CSC
  // scatter map used by every later gather.
  std::vector<std::uint32_t> perm(nnz);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return slot_col_[a] != slot_col_[b] ? slot_col_[a] < slot_col_[b]
                                        : slot_row_[a] < slot_row_[b];
  });
  col_ptr_.assign(dim_ + 1, 0);
  for (std::size_t s = 0; s < nnz; ++s) ++col_ptr_[slot_col_[s] + 1];
  for (std::size_t c = 0; c < dim_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_ind_.resize(nnz);
  csc_of_slot_.resize(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::uint32_t s = perm[k];
    row_ind_[k] = slot_row_[s];
    csc_of_slot_[s] = static_cast<std::uint32_t>(k);
  }

  switch (ordering_) {
    case Ordering::Natural:
      q_.resize(dim_);
      std::iota(q_.begin(), q_.end(), 0u);
      ordering_used_ = "natural";
      break;
    case Ordering::Rcm:
      q_ = rcm_order(dim_, col_ptr_, row_ind_);
      ordering_used_ = "rcm";
      break;
    case Ordering::Amd:
      q_ = amd_order(dim_, col_ptr_, row_ind_);
      ordering_used_ = "amd";
      break;
    case Ordering::Auto: {
      // Profile heuristic vs fill heuristic: predict nnz(L) for both and
      // keep the winner. One-time cost per pattern, O(nnz(L)) each, off a
      // single shared adjacency construction.
      const SymAdjacency g = symmetrized_adjacency(dim_, col_ptr_, row_ind_);
      auto rcm = rcm_from_adjacency(dim_, g);
      auto amd = amd_from_adjacency(dim_, g);
      const std::size_t fill_rcm = fill_from_adjacency(dim_, g, rcm);
      const std::size_t fill_amd = fill_from_adjacency(dim_, g, amd);
      if (fill_amd < fill_rcm) {
        q_ = std::move(amd);
        ordering_used_ = "amd";
      } else {
        q_ = std::move(rcm);
        ordering_used_ = "rcm";
      }
      break;
    }
  }
  qpos_.resize(dim_);
  for (std::uint32_t k = 0; k < dim_; ++k) qpos_[q_[k]] = k;

  csc_vals_.assign(nnz, T{});
  cached_vals_.assign(nnz, T{});
  work_.assign(dim_, T{});
  mark_.assign(dim_, 0);
  pinv_.assign(dim_, -1);
  prow_.assign(dim_, 0);
  diag_.assign(dim_, T{});
  sol_.assign(dim_, T{});
  heap_.clear();
  unassigned_.clear();
  sn_mark_.assign(dim_, 0); // sn_mark_ctr_ stays monotonic: stale-proof
  sn_loc_.assign(dim_, 0);
  pattern_dirty_ = false;
  factor_valid_ = false;
}

template <typename T>
std::size_t SparseSolverT<T>::factor_nnz() const {
  return l_rows_.size() + u_rows_.size() + dim_; // + unit/diag entries
}

template <typename T>
bool SparseSolverT<T>::factor(std::size_t start) {
  const std::size_t n = dim_;
  if (start == 0) {
    l_ptr_.assign(1, 0);
    l_rows_.clear();
    l_vals_.clear();
    u_ptr_.assign(1, 0);
    u_rows_.clear();
    u_vals_.clear();
    std::fill(pinv_.begin(), pinv_.end(), -1);
    sn_start_.clear();
    sn_width_.clear();
    sn_of_col_.assign(n, 0);
    sn_rows_ptr_.assign(1, 0);
    sn_rows_.clear();
    sn_panel_ptr_.clear();
    sn_panel_vals_.clear();
    sn_panels_multi_ = 0;
    sn_cols_multi_ = 0;
  } else {
    // Keep the factored prefix [0, start); free the pivot assignments of
    // the recomputed suffix (prow_ is complete — partial restarts only run
    // on top of a full valid factorization).
    for (std::size_t k = start; k < n; ++k) pinv_[prow_[k]] = -1;
    l_rows_.resize(l_ptr_[start]);
    l_vals_.resize(l_ptr_[start]);
    l_ptr_.resize(start + 1);
    u_rows_.resize(u_ptr_[start]);
    u_vals_.resize(u_ptr_[start]);
    u_ptr_.resize(start + 1);
    if (supernodal_ && !sn_start_.empty()) {
      // `start` is a panel boundary (solve() snaps it down); drop every
      // panel at or after it and recount the width >= 2 observables.
      const std::uint32_t p0 = sn_of_col_[start];
      sn_rows_.resize(sn_rows_ptr_[p0]);
      sn_rows_ptr_.resize(p0 + 1);
      sn_panel_vals_.resize(sn_panel_ptr_[p0]);
      sn_panel_ptr_.resize(p0);
      sn_start_.resize(p0);
      sn_width_.resize(p0);
      sn_panels_multi_ = 0;
      sn_cols_multi_ = 0;
      for (const std::uint32_t w : sn_width_) {
        if (w >= 2) {
          ++sn_panels_multi_;
          sn_cols_multi_ += w;
        }
      }
    }
  }
  last_factor_start_ = start;
  factor_cols_total_ += n - start;
  // Trailing detection panel: columns join while their below-diagonal L
  // pattern nests exactly into the panel's opening pattern.
  std::size_t open_start = start;
  std::size_t open_nb0 = 0;

  const auto heap_cmp = std::greater<std::uint32_t>();
  bool singular = false;

  for (std::size_t k = start; k < n && !singular; ++k) {
    const std::uint32_t col = q_[k];
    ++sn_col_stamp_; // new target column: every panel is unapplied again
    heap_.clear();
    unassigned_.clear();
    u_scratch_rows_.clear();
    u_scratch_vals_.clear();
    touched_.clear();

    // Scatter A(:, col). The assembled pattern has unique positions, so a
    // plain store per row suffices.
    for (std::uint32_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p) {
      const std::uint32_t r = row_ind_[p];
      work_[r] = csc_vals_[p];
      mark_[r] = 1;
      touched_.push_back(r);
      if (pinv_[r] >= 0) {
        heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        unassigned_.push_back(r);
      }
    }

    // Left-looking update: apply earlier pivot columns in ascending pivot
    // order. Fill introduced by column t is always assigned to a pivot
    // later than t (or unassigned), so the min-heap pops monotonically and
    // each pivot is pushed at most once (rows are marked on first touch).
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
      const std::uint32_t t = heap_.back();
      heap_.pop_back();
      if (supernodal_ && t < open_start && sn_width_[sn_of_col_[t]] >= 2) {
        // First popped member of a closed multi-column panel: apply the
        // whole panel densely. Later members of the same panel pop with
        // the done-stamp set and are skipped — their U entries were
        // produced here, in ascending order (members below the first
        // touched one solve to exact zero in the triangle).
        const std::uint32_t panel = sn_of_col_[t];
        if (sn_done_[panel] == sn_col_stamp_) continue;
        sn_done_[panel] = sn_col_stamp_;
        apply_closed_panel(panel, static_cast<std::int32_t>(k));
        continue;
      }
      const T ut = work_[prow_[t]];
      if (ut == T{}) continue; // exact numeric zero: no U entry, no update
      u_scratch_rows_.push_back(t);
      u_scratch_vals_.push_back(ut);
      for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
        const std::uint32_t r = l_rows_[p];
        const T delta = l_vals_[p] * ut;
        if (!mark_[r]) {
          mark_[r] = 1;
          touched_.push_back(r);
          work_[r] = -delta;
          if (pinv_[r] >= 0) {
            heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
            std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
          } else {
            unassigned_.push_back(r);
          }
        } else {
          work_[r] -= delta;
        }
      }
    }

    // Threshold partial pivoting among the not-yet-pivotal rows; the
    // diagonal row wins when within tol_ of the column maximum (keeps the
    // ordering's structure), otherwise the max-magnitude row (handles the
    // zero-diagonal branch rows of voltage sources).
    double best = 0.0;
    std::uint32_t pr = 0;
    bool have = false;
    for (const std::uint32_t r : unassigned_) {
      const double m = std::abs(work_[r]);
      if (!have || m > best) {
        best = m;
        pr = r;
        have = true;
      }
    }
    if (!have || best < 1e-300) {
      singular = true;
    } else {
      if (col < n && pinv_[col] < 0 && mark_[col]) {
        const double dmag = std::abs(work_[col]);
        if (dmag > 0.0 && dmag >= tol_ * best) pr = col;
      }
      const T piv = work_[pr];
      pinv_[pr] = static_cast<std::int32_t>(k);
      prow_[k] = pr;
      diag_[k] = piv;

      u_rows_.insert(u_rows_.end(), u_scratch_rows_.begin(),
                     u_scratch_rows_.end());
      u_vals_.insert(u_vals_.end(), u_scratch_vals_.begin(),
                     u_scratch_vals_.end());
      u_ptr_.push_back(static_cast<std::uint32_t>(u_rows_.size()));

      for (const std::uint32_t r : unassigned_) {
        if (r == pr) continue;
        const T lv = work_[r] / piv;
        if (lv == T{}) continue;
        l_rows_.push_back(r);
        l_vals_.push_back(lv);
      }
      l_ptr_.push_back(static_cast<std::uint32_t>(l_rows_.size()));

      if (supernodal_) {
        // On-the-fly detection: position k joins the open panel iff its
        // pivot row and all of its L rows lie in the panel's opening row
        // set and the count matches the nested-pattern identity
        // |L_k| = nb0 - (k - open_start). Assigned rows can never appear
        // in a later L column, so subset + count <=> exact equality.
        const std::uint32_t lbeg = l_ptr_[k];
        const std::uint32_t lend = l_ptr_[k + 1];
        const std::size_t nbk = lend - lbeg;
        bool joins = false;
        if (k > open_start && k - open_start < kMaxPanelWidth &&
            open_nb0 == nbk + (k - open_start) &&
            sn_mark_[pr] == sn_mark_ctr_) {
          joins = true;
          for (std::uint32_t p = lbeg; p < lend; ++p) {
            if (sn_mark_[l_rows_[p]] != sn_mark_ctr_) {
              joins = false;
              break;
            }
          }
        }
        if (!joins) {
          if (k > open_start) close_panel(open_start, k);
          open_start = k;
          open_nb0 = nbk;
          ++sn_mark_ctr_;
          for (std::uint32_t p = lbeg; p < lend; ++p) {
            sn_mark_[l_rows_[p]] = sn_mark_ctr_;
          }
        }
      }
    }

    for (const std::uint32_t r : touched_) {
      mark_[r] = 0;
      work_[r] = T{};
    }
  }
  if (supernodal_ && !singular && open_start < n) close_panel(open_start, n);
  return !singular;
}

template <typename T>
void SparseSolverT<T>::close_panel(std::size_t s, std::size_t e) {
  const auto panel = static_cast<std::uint32_t>(sn_start_.size());
  const auto w = static_cast<std::uint32_t>(e - s);
  sn_start_.push_back(static_cast<std::uint32_t>(s));
  sn_width_.push_back(w);
  for (std::size_t pos = s; pos < e; ++pos) {
    sn_of_col_[pos] = panel;
  }
  // Canonical below-row order: the last member's L rows — the nested
  // pattern's intersection — in their stored order.
  const std::uint32_t lbeg = l_ptr_[e - 1];
  const std::uint32_t lend = l_ptr_[e];
  const std::uint32_t nb = lend - lbeg;
  sn_rows_.insert(sn_rows_.end(), l_rows_.begin() + lbeg,
                  l_rows_.begin() + lend);
  sn_rows_ptr_.push_back(static_cast<std::uint32_t>(sn_rows_.size()));
  sn_panel_ptr_.push_back(static_cast<std::uint32_t>(sn_panel_vals_.size()));
  if (sn_done_.size() <= panel) sn_done_.resize(panel + 1, 0);
  if (w < 2) return; // singletons keep the scalar per-column path
  // Dense column-major copy: [w unit-triangle rows][nb below rows] per
  // column; entries absent from a member's L column stay exact zero.
  const std::size_t len = static_cast<std::size_t>(w) + nb;
  for (std::uint32_t j = 0; j < w; ++j) sn_loc_[prow_[s + j]] = j;
  for (std::uint32_t i = 0; i < nb; ++i) {
    sn_loc_[l_rows_[lbeg + i]] = w + i;
  }
  const std::size_t base = sn_panel_vals_.size();
  sn_panel_vals_.resize(base + static_cast<std::size_t>(w) * len, T{});
  for (std::uint32_t i = 0; i < w; ++i) {
    T* colv = sn_panel_vals_.data() + base + i * len;
    for (std::uint32_t p = l_ptr_[s + i]; p < l_ptr_[s + i + 1]; ++p) {
      colv[sn_loc_[l_rows_[p]]] = l_vals_[p];
    }
  }
  ++sn_panels_multi_;
  sn_cols_multi_ += w;
}

template <typename T>
void SparseSolverT<T>::apply_closed_panel(std::uint32_t panel,
                                          std::int32_t pivotal_bound) {
  const auto heap_cmp = std::greater<std::uint32_t>();
  const std::uint32_t w = sn_width_[panel];
  const std::uint32_t s = sn_start_[panel];
  const std::uint32_t rb = sn_rows_ptr_[panel];
  const std::uint32_t nb = sn_rows_ptr_[panel + 1] - rb;
  const std::size_t len = w + nb;
  const T* panelv = sn_panel_vals_.data() + sn_panel_ptr_[panel];
  // Gather the raw pivot-row values; the dense unit-lower solve
  // applies the intra-panel updates (external updates from pivots
  // before the panel are complete — the heap pops ascending).
  if (sn_u_.size() < w) sn_u_.resize(w);
  for (std::uint32_t j = 0; j < w; ++j) {
    const std::uint32_t r = prow_[s + j];
    sn_u_[j] = mark_[r] ? work_[r] : T{};
  }
  for (std::uint32_t i = 0; i + 1 < w; ++i) {
    const T ui = sn_u_[i];
    if (ui == T{}) continue;
    const T* colv = panelv + i * len;
    for (std::uint32_t j = i + 1; j < w; ++j) sn_u_[j] -= colv[j] * ui;
  }
  for (std::uint32_t j = 0; j < w; ++j) {
    if (sn_u_[j] == T{}) continue;
    u_scratch_rows_.push_back(s + j);
    u_scratch_vals_.push_back(sn_u_[j]);
  }
  if (nb != 0) {
    // Rank-w update of the shared below-block: compress the nonzero
    // u's, accumulate densely (rank-4 fused SIMD passes, rank-1
    // remainder), scatter-subtract once. The rank-4 fusion quarters
    // the accumulator traffic per flop; per element the additions
    // keep the sequential rank-1 order, so the blocking is
    // bit-neutral.
    if (sn_acc_.size() < nb) sn_acc_.resize(nb);
    std::fill_n(sn_acc_.begin(), nb, T{});
    const T* ucols[kMaxPanelWidth];
    T uvals[kMaxPanelWidth];
    std::uint32_t m = 0;
    for (std::uint32_t i = 0; i < w; ++i) {
      const T ui = sn_u_[i];
      if (ui == T{}) continue;
      ucols[m] = panelv + i * len + w;
      uvals[m] = ui;
      ++m;
    }
    std::uint32_t i4 = 0;
    for (; i4 + 4 <= m; i4 += 4) {
      panel_axpy4(sn_acc_.data(), ucols + i4, uvals + i4, nb);
    }
    for (; i4 < m; ++i4) {
      panel_axpy(sn_acc_.data(), ucols[i4], uvals[i4], nb);
    }
    const bool any = m != 0;
    if (any) {
      const std::uint32_t* rows = sn_rows_.data() + rb;
      for (std::uint32_t idx = 0; idx < nb; ++idx) {
        const T d = sn_acc_[idx];
        if (d == T{}) continue;
        const std::uint32_t r = rows[idx];
        if (!mark_[r]) {
          mark_[r] = 1;
          touched_.push_back(r);
          work_[r] = -d;
          if (pinv_[r] >= 0 && pinv_[r] < pivotal_bound) {
            heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
            std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
          } else {
            unassigned_.push_back(r);
          }
        } else {
          work_[r] -= d;
        }
      }
    }
  }
}

template <typename T>
bool SparseSolverT<T>::replay_column(std::size_t k) {
  const std::uint32_t col = q_[k];
  const auto kb = static_cast<std::int32_t>(k);
  const auto heap_cmp = std::greater<std::uint32_t>();
  ++sn_col_stamp_; // new target column: every panel is unapplied again
  heap_.clear();
  unassigned_.clear();
  u_scratch_rows_.clear();
  u_scratch_vals_.clear();
  l_scratch_vals_.clear();
  touched_.clear();

  const auto finish = [this](bool ok) {
    for (const std::uint32_t r : touched_) {
      mark_[r] = 0;
      work_[r] = T{};
    }
    return ok;
  };

  // Scatter A(:, col). Rows pivotal before position k push their pivot;
  // rows assigned at or after k were still pivot candidates when k was
  // first factored, so they stay candidates in the replay.
  for (std::uint32_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p) {
    const std::uint32_t r = row_ind_[p];
    work_[r] = csc_vals_[p];
    mark_[r] = 1;
    touched_.push_back(r);
    if (pinv_[r] >= 0 && pinv_[r] < kb) {
      heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
      std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    } else {
      unassigned_.push_back(r);
    }
  }

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
    const std::uint32_t t = heap_.back();
    heap_.pop_back();
    if (supernodal_ && !sn_start_.empty()) {
      // A panel was *closed* while column k was originally factored iff it
      // ends strictly before k (the panel ending exactly at k was still
      // open — its close decision was made by k itself). Those pop through
      // the dense path; the trailing open panel's members stay scalar,
      // which replays the original trace bit-for-bit.
      const std::uint32_t panel = sn_of_col_[t];
      if (sn_width_[panel] >= 2 &&
          sn_start_[panel] + sn_width_[panel] < static_cast<std::uint32_t>(k)) {
        if (sn_done_[panel] == sn_col_stamp_) continue;
        sn_done_[panel] = sn_col_stamp_;
        apply_closed_panel(panel, kb);
        continue;
      }
    }
    const T ut = work_[prow_[t]];
    if (ut == T{}) continue; // exact numeric zero: no U entry, no update
    u_scratch_rows_.push_back(t);
    u_scratch_vals_.push_back(ut);
    for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
      const std::uint32_t r = l_rows_[p];
      const T delta = l_vals_[p] * ut;
      if (!mark_[r]) {
        mark_[r] = 1;
        touched_.push_back(r);
        work_[r] = -delta;
        if (pinv_[r] >= 0 && pinv_[r] < kb) {
          heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
          std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
        } else {
          unassigned_.push_back(r);
        }
      } else {
        work_[r] -= delta;
      }
    }
  }

  // The same threshold-pivoting rule as factor(); the replay only commits
  // when it lands on the row the stored factorization chose.
  double best = 0.0;
  std::uint32_t pr = 0;
  bool have = false;
  for (const std::uint32_t r : unassigned_) {
    const double m = std::abs(work_[r]);
    if (!have || m > best) {
      best = m;
      pr = r;
      have = true;
    }
  }
  if (!have || best < 1e-300) return finish(false);
  if (col < dim_ && (pinv_[col] < 0 || pinv_[col] >= kb) && mark_[col]) {
    const double dmag = std::abs(work_[col]);
    if (dmag > 0.0 && dmag >= tol_ * best) pr = col;
  }
  if (pr != prow_[k]) return finish(false);

  // U must replay the stored trace exactly (same rows, same order).
  const std::uint32_t ub = u_ptr_[k];
  const std::uint32_t ue = u_ptr_[k + 1];
  if (ue - ub != u_scratch_rows_.size()) return finish(false);
  for (std::uint32_t i = 0; i < ue - ub; ++i) {
    if (u_rows_[ub + i] != u_scratch_rows_[i]) return finish(false);
  }

  // L likewise: candidates in insertion order, exact zeros dropped, must
  // reproduce the stored row sequence.
  const T piv = work_[pr];
  const std::uint32_t lb = l_ptr_[k];
  const std::uint32_t le = l_ptr_[k + 1];
  std::uint32_t li = 0;
  for (const std::uint32_t r : unassigned_) {
    if (r == pr) continue;
    const T lv = work_[r] / piv;
    if (lv == T{}) continue;
    if (li >= le - lb || l_rows_[lb + li] != r) return finish(false);
    l_scratch_vals_.push_back(lv);
    ++li;
  }
  if (li != le - lb) return finish(false);

  diag_[k] = piv;
  std::copy(u_scratch_vals_.begin(), u_scratch_vals_.end(),
            u_vals_.begin() + ub);
  std::copy(l_scratch_vals_.begin(), l_scratch_vals_.end(),
            l_vals_.begin() + lb);
  return finish(true);
}

template <typename T>
bool SparseSolverT<T>::refactor_scattered(std::size_t first_dirty,
                                          bool& engaged) {
  engaged = false;
  const std::size_t n = dim_;
  // Propagate dirtiness through the stored U structure: a clean column
  // whose U column references a dirty earlier pivot sees different
  // updates and must be recomputed; everything else replays identically
  // and keeps its stored L/U column. The walk stops at the first dirty
  // position inside a width >= 2 panel — panel dense values are only
  // rebuilt by close_panel(), so from that panel's start the classic
  // suffix restart takes over.
  std::size_t cutoff = n;
  for (std::size_t k = first_dirty; k < n; ++k) {
    if (!dirty_pos_[k]) {
      for (std::uint32_t p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p) {
        if (dirty_pos_[u_rows_[p]]) {
          dirty_pos_[k] = 1;
          break;
        }
      }
    }
    if (dirty_pos_[k] && supernodal_ && !sn_start_.empty() &&
        sn_width_[sn_of_col_[k]] >= 2) {
      cutoff = sn_start_[sn_of_col_[k]];
      break;
    }
  }
  std::size_t scattered = 0;
  for (std::size_t k = first_dirty; k < cutoff; ++k) scattered += dirty_pos_[k];

  // Engage only when skipping clean columns buys enough over the suffix
  // restart (which has no per-column replay checks): at least a quarter
  // of the suffix must be skippable.
  std::size_t suffix_start = first_dirty;
  if (suffix_start > 0 && supernodal_ && !sn_start_.empty()) {
    suffix_start = sn_start_[sn_of_col_[suffix_start - 1]];
  }
  if (scattered + (n - cutoff) >= ((n - suffix_start) * 3) / 4) return true;
  engaged = true;

  // Suffix restart from position s, with the same panel snap solve()
  // applies: the column at s may have a different L pattern under the new
  // values, which can change the extend/close decision of the panel
  // containing s-1 — re-running that panel re-makes the decision exactly
  // the way a from-scratch factorization would.
  const auto suffix_from = [&](std::size_t s) {
    if (s > 0 && supernodal_ && !sn_start_.empty()) {
      s = sn_start_[sn_of_col_[s - 1]];
    }
    const bool ok = factor(s);
    if (ok) last_factor_start_ = std::min(last_factor_start_, first_dirty);
    return ok;
  };

  for (std::size_t k = first_dirty; k < cutoff; ++k) {
    if (!dirty_pos_[k]) continue;
    // Values drifted past a pivot choice, a pattern row, or an exact-zero
    // drop: finish with the suffix path from here.
    if (!replay_column(k)) return suffix_from(k);
    ++factor_cols_total_;
    ++scattered_cols_total_;
  }
  if (cutoff < n) return suffix_from(cutoff);
  last_factor_start_ = first_dirty;
  return true;
}

template <typename T>
bool SparseSolverT<T>::factor_markowitz() {
  const std::size_t n = dim_;
  l_ptr_.assign(1, 0);
  l_rows_.clear();
  l_vals_.clear();
  u_rows_.clear();
  u_vals_.clear();
  std::fill(pinv_.begin(), pinv_.end(), -1);
  sn_start_.clear();
  sn_width_.clear();
  sn_of_col_.assign(n, 0);
  sn_rows_ptr_.assign(1, 0);
  sn_rows_.clear();
  sn_panel_ptr_.clear();
  sn_panel_vals_.clear();
  sn_panels_multi_ = 0;
  sn_cols_multi_ = 0;
  last_factor_start_ = 0;
  factor_cols_total_ += n;

  // Active submatrix: row-wise hash maps (live columns only) plus lazy
  // per-column row lists; colcnt_ tracks the exact live count so the
  // Markowitz cost (rowcount-1)*(colcount-1) is cheap to evaluate.
  std::vector<std::unordered_map<std::uint32_t, T>> arow(n);
  std::vector<std::vector<std::uint32_t>> colrows(n);
  std::vector<std::uint32_t> colcnt(n, 0);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
      const std::uint32_t r = row_ind_[p];
      arow[r].emplace(c, csc_vals_[p]);
      colrows[c].push_back(r);
      ++colcnt[c];
    }
  }
  std::vector<std::uint8_t> col_done(n, 0);
  // U is accumulated per *column*: eliminating pivot t appends (t, value)
  // to every live column of the pivot row, so each list ends up in
  // ascending pivot order — exactly the layout the back-substitution
  // expects once concatenated in final column order.
  std::vector<std::vector<std::pair<std::uint32_t, T>>> ucol(n);
  std::vector<std::pair<std::uint32_t, double>> cand; // (row, |value|)

  for (std::size_t t = 0; t < n; ++t) {
    // Pivot search: minimal Markowitz cost among entries within tol_ of
    // their column max. Deterministic: columns ascending, rows in list
    // order, strict improvement (or same cost with larger magnitude) wins.
    std::size_t best_cost = std::numeric_limits<std::size_t>::max();
    double best_mag = 0.0;
    std::uint32_t bi = 0, bj = 0;
    bool have = false;
    for (std::uint32_t c = 0; c < n; ++c) {
      if (col_done[c]) continue;
      cand.clear();
      double cmax = 0.0;
      auto& list = colrows[c];
      std::size_t live = 0;
      for (const std::uint32_t r : list) {
        const auto it = arow[r].find(c);
        if (it == arow[r].end()) continue; // stale (eliminated row)
        list[live++] = r; // compact in place, preserving order
        const double m = std::abs(it->second);
        cmax = std::max(cmax, m);
        cand.emplace_back(r, m);
      }
      list.resize(live);
      if (cmax < 1e-300) continue; // numerically empty column
      const std::size_t ccnt = colcnt[c];
      for (const auto& [r, m] : cand) {
        if (m < tol_ * cmax || m == 0.0) continue;
        const std::size_t cost = (arow[r].size() - 1) * (ccnt - 1);
        if (!have || cost < best_cost ||
            (cost == best_cost && m > best_mag)) {
          best_cost = cost;
          best_mag = m;
          bi = r;
          bj = c;
          have = true;
        }
      }
    }
    if (!have) return false; // structurally or numerically singular

    const T piv = arow[bi][bj];
    q_[t] = bj;
    prow_[t] = bi;
    pinv_[bi] = static_cast<std::int32_t>(t);
    diag_[t] = piv;
    col_done[bj] = 1;

    // U row t -> per-column lists; L column t from the live pivot column.
    std::vector<std::pair<std::uint32_t, T>> urow;
    urow.reserve(arow[bi].size());
    for (const auto& [c, v] : arow[bi]) {
      --colcnt[c];
      if (c == bj) continue;
      urow.emplace_back(c, v);
      ucol[c].emplace_back(static_cast<std::uint32_t>(t), v);
    }
    for (const std::uint32_t r : colrows[bj]) {
      if (r == bi) continue;
      const auto it = arow[r].find(bj);
      if (it == arow[r].end()) continue;
      const T lv = it->second / piv;
      arow[r].erase(it);
      if (lv == T{}) continue;
      l_rows_.push_back(r);
      l_vals_.push_back(lv);
      // Rank-1 update of row r; fill entries extend the column lists.
      for (const auto& [c, u] : urow) {
        const auto [it2, inserted] = arow[r].try_emplace(c, T{});
        if (inserted) {
          colrows[c].push_back(r);
          ++colcnt[c];
        }
        it2->second -= lv * u;
      }
    }
    l_ptr_.push_back(static_cast<std::uint32_t>(l_rows_.size()));
    std::unordered_map<std::uint32_t, T>().swap(arow[bi]);
  }

  for (std::uint32_t k = 0; k < n; ++k) qpos_[q_[k]] = k;
  u_ptr_.assign(1, 0);
  for (std::size_t k = 0; k < n; ++k) {
    for (const auto& [tt, v] : ucol[q_[k]]) {
      u_rows_.push_back(tt);
      u_vals_.push_back(v);
    }
    u_ptr_.push_back(static_cast<std::uint32_t>(u_rows_.size()));
  }
  ordering_used_ = "markowitz";
  return true;
}

template <typename T>
bool SparseSolverT<T>::solve(const std::vector<T>& b, std::vector<T>& x) {
  if (b.size() != dim_) {
    throw std::invalid_argument("SparseSolverT: rhs dimension mismatch");
  }
  if (pattern_dirty_) rebuild_symbolic();

  // Gather the slot-ordered accumulation into CSC order. Slots not stamped
  // in this pass hold zero, which keeps the pattern stable across passes.
  for (std::size_t s = 0; s < csc_of_slot_.size(); ++s) {
    csc_vals_[csc_of_slot_[s]] = vals_[s];
  }

  // Dirty scan, column-wise: the first changed pivot position bounds what
  // the refactorization must recompute (a left-looking column depends only
  // on its A column and earlier pivot columns). The same pass marks every
  // own-dirty pivot position so the scattered refactorization can skip the
  // clean columns inside the suffix without rescanning the values.
  std::size_t first_dirty = std::numeric_limits<std::size_t>::max();
  if (factor_valid_) {
    dirty_pos_.assign(dim_, 0);
    for (std::size_t c = 0; c < dim_; ++c) {
      for (std::uint32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
        if (csc_vals_[p] != cached_vals_[p]) {
          dirty_pos_[qpos_[c]] = 1;
          if (qpos_[c] < first_dirty) first_dirty = qpos_[c];
          break;
        }
      }
    }
  } else {
    first_dirty = 0;
  }

  if (first_dirty != std::numeric_limits<std::size_t>::max()) {
    const bool scatter_eligible = partial_ && factor_valid_ && !markowitz_;
    factor_valid_ = false;
    bool engaged = false;
    bool ok = false;
    if (scatter_eligible) {
      ok = refactor_scattered(first_dirty, engaged);
    }
    if (!engaged) {
      std::size_t start = scatter_eligible ? first_dirty : std::size_t{0};
      if (start > 0 && supernodal_ && !sn_start_.empty()) {
        // Snap to the panel containing position start-1: a full refactor
        // reaches the first dirty position with that panel still *open*
        // (the close decision is made by the dirty column itself), so the
        // restart must re-run it to keep partial == full bit-for-bit.
        start = sn_start_[sn_of_col_[start - 1]];
      }
      ok = markowitz_ ? factor_markowitz() : factor(start);
    }
    if (!ok) return false;
    cached_vals_ = csc_vals_;
    factor_valid_ = true;
    ++factor_count_;
  }

  const std::size_t n = dim_;
  x = b;
  // Forward solve through unit-diagonal L: columns in pivot order only ever
  // update rows with later pivot order.
  for (std::size_t t = 0; t < n; ++t) {
    const T ct = x[prow_[t]];
    if (ct == T{}) continue;
    for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
      x[l_rows_[p]] -= l_vals_[p] * ct;
    }
  }
  // Column-sweep back substitution through U.
  for (std::size_t k = n; k-- > 0;) {
    const T w = x[prow_[k]] / diag_[k];
    sol_[k] = w;
    if (w == T{}) continue;
    for (std::uint32_t p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p) {
      x[prow_[u_rows_[p]]] -= u_vals_[p] * w;
    }
  }
  // Undo the column permutation: position q_[k] of the solution is sol_[k].
  for (std::size_t k = 0; k < n; ++k) x[q_[k]] = sol_[k];
  return true;
}

template class SparseSolverT<double>;
template class SparseSolverT<std::complex<double>>;

} // namespace mss::spice
