#include "spice/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mss::spice {

// ---------------------------------------------------------------------------
// Reverse-Cuthill-McKee ordering
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> rcm_order(std::size_t dim,
                                     const std::vector<std::uint32_t>& col_ptr,
                                     const std::vector<std::uint32_t>& row_ind) {
  if (col_ptr.size() != dim + 1) {
    throw std::invalid_argument("rcm_order: bad column pointer array");
  }
  const auto n = static_cast<std::uint32_t>(dim);

  // Symmetrised adjacency in CSR form: each structural (r, c) contributes
  // both r -> c and c -> r, duplicates removed per vertex.
  std::vector<std::uint32_t> deg(dim, 0);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const std::uint32_t r = row_ind[p];
      if (r == c) continue;
      ++deg[r];
      ++deg[c];
    }
  }
  std::vector<std::uint32_t> adj_ptr(dim + 1, 0);
  for (std::size_t v = 0; v < dim; ++v) adj_ptr[v + 1] = adj_ptr[v] + deg[v];
  std::vector<std::uint32_t> adj(adj_ptr[dim]);
  {
    std::vector<std::uint32_t> fill = adj_ptr;
    for (std::uint32_t c = 0; c < n; ++c) {
      for (std::uint32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
        const std::uint32_t r = row_ind[p];
        if (r == c) continue;
        adj[fill[r]++] = c;
        adj[fill[c]++] = r;
      }
    }
  }
  for (std::size_t v = 0; v < dim; ++v) {
    const auto b = adj.begin() + adj_ptr[v];
    const auto e = adj.begin() + adj_ptr[v] + deg[v];
    std::sort(b, e);
    const auto last = std::unique(b, e);
    deg[v] = static_cast<std::uint32_t>(last - b);
  }

  std::vector<std::uint8_t> visited(dim, 0);
  std::vector<std::uint32_t> order;
  order.reserve(dim);
  std::vector<std::uint32_t> frontier, next;

  // Plain BFS used both for the pseudo-peripheral search and the CM sweep.
  const auto bfs = [&](std::uint32_t seed, bool record) -> std::uint32_t {
    std::vector<std::uint8_t> seen(dim, 0);
    seen[seed] = 1;
    frontier.assign(1, seed);
    std::uint32_t last_min_deg = seed;
    while (!frontier.empty()) {
      next.clear();
      for (const std::uint32_t v : frontier) {
        if (record) order.push_back(v);
        // Neighbours in ascending-degree order — the Cuthill-McKee rule.
        const std::uint32_t b = adj_ptr[v];
        std::vector<std::uint32_t> nbrs(adj.begin() + b,
                                        adj.begin() + b + deg[v]);
        std::sort(nbrs.begin(), nbrs.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                    return deg[x] != deg[y] ? deg[x] < deg[y] : x < y;
                  });
        for (const std::uint32_t w : nbrs) {
          if (!seen[w]) {
            seen[w] = 1;
            next.push_back(w);
          }
        }
      }
      if (!next.empty()) {
        last_min_deg = *std::min_element(
            next.begin(), next.end(), [&](std::uint32_t x, std::uint32_t y) {
              return deg[x] != deg[y] ? deg[x] < deg[y] : x < y;
            });
      }
      frontier.swap(next);
    }
    if (record) {
      for (const std::uint32_t v : order) visited[v] = 1;
    }
    return last_min_deg;
  };

  for (std::uint32_t v0 = 0; v0 < n; ++v0) {
    if (visited[v0]) continue;
    // Pseudo-peripheral seed: two BFS hops towards an eccentric vertex.
    std::uint32_t seed = v0;
    seed = bfs(seed, /*record=*/false);
    seed = bfs(seed, /*record=*/false);
    const std::size_t before = order.size();
    bfs(seed, /*record=*/true);
    // BFS from a seed only covers the seed's component; mark what it did.
    (void)before;
  }
  std::reverse(order.begin(), order.end());
  return order;
}

// ---------------------------------------------------------------------------
// SparseSolverT
// ---------------------------------------------------------------------------

template <typename T>
SparseSolverT<T>::SparseSolverT(double pivot_tol) : tol_(pivot_tol) {
  if (tol_ <= 0.0 || tol_ > 1.0) {
    throw std::invalid_argument("SparseSolverT: pivot_tol must be in (0, 1]");
  }
}

template <typename T>
void SparseSolverT<T>::begin(std::size_t dim) {
  if (dim != dim_) {
    dim_ = dim;
    slot_of_.clear();
    slot_row_.clear();
    slot_col_.clear();
    vals_.clear();
    pattern_dirty_ = true;
    factor_valid_ = false;
  }
  std::fill(vals_.begin(), vals_.end(), T{});
}

template <typename T>
void SparseSolverT<T>::add(std::size_t i, std::size_t j, T v) {
  const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) |
                            static_cast<std::uint64_t>(j);
  const auto [it, inserted] =
      slot_of_.try_emplace(key, static_cast<std::uint32_t>(slot_row_.size()));
  if (inserted) {
    slot_row_.push_back(static_cast<std::uint32_t>(i));
    slot_col_.push_back(static_cast<std::uint32_t>(j));
    vals_.push_back(v);
    pattern_dirty_ = true;
  } else {
    vals_[it->second] += v;
  }
}

template <typename T>
void SparseSolverT<T>::rebuild_symbolic() {
  const std::size_t nnz = slot_row_.size();
  // Sort slots by (col, row) to obtain the CSC layout and the slot -> CSC
  // scatter map used by every later gather.
  std::vector<std::uint32_t> perm(nnz);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return slot_col_[a] != slot_col_[b] ? slot_col_[a] < slot_col_[b]
                                        : slot_row_[a] < slot_row_[b];
  });
  col_ptr_.assign(dim_ + 1, 0);
  for (std::size_t s = 0; s < nnz; ++s) ++col_ptr_[slot_col_[s] + 1];
  for (std::size_t c = 0; c < dim_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_ind_.resize(nnz);
  csc_of_slot_.resize(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::uint32_t s = perm[k];
    row_ind_[k] = slot_row_[s];
    csc_of_slot_[s] = static_cast<std::uint32_t>(k);
  }

  q_ = rcm_order(dim_, col_ptr_, row_ind_);

  csc_vals_.assign(nnz, T{});
  cached_vals_.assign(nnz, T{});
  work_.assign(dim_, T{});
  mark_.assign(dim_, 0);
  pinv_.assign(dim_, -1);
  prow_.assign(dim_, 0);
  diag_.assign(dim_, T{});
  sol_.assign(dim_, T{});
  heap_.clear();
  unassigned_.clear();
  pattern_dirty_ = false;
  factor_valid_ = false;
}

template <typename T>
std::size_t SparseSolverT<T>::factor_nnz() const {
  return l_rows_.size() + u_rows_.size() + dim_; // + unit/diag entries
}

template <typename T>
bool SparseSolverT<T>::factor() {
  const std::size_t n = dim_;
  l_ptr_.assign(1, 0);
  l_rows_.clear();
  l_vals_.clear();
  u_ptr_.assign(1, 0);
  u_rows_.clear();
  u_vals_.clear();
  std::fill(pinv_.begin(), pinv_.end(), -1);

  const auto heap_cmp = std::greater<std::uint32_t>();
  bool singular = false;

  for (std::size_t k = 0; k < n && !singular; ++k) {
    const std::uint32_t col = q_[k];
    heap_.clear();
    unassigned_.clear();
    u_scratch_rows_.clear();
    u_scratch_vals_.clear();
    touched_.clear();

    // Scatter A(:, col). The assembled pattern has unique positions, so a
    // plain store per row suffices.
    for (std::uint32_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p) {
      const std::uint32_t r = row_ind_[p];
      work_[r] = csc_vals_[p];
      mark_[r] = 1;
      touched_.push_back(r);
      if (pinv_[r] >= 0) {
        heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        unassigned_.push_back(r);
      }
    }

    // Left-looking update: apply earlier pivot columns in ascending pivot
    // order. Fill introduced by column t is always assigned to a pivot
    // later than t (or unassigned), so the min-heap pops monotonically and
    // each pivot is pushed at most once (rows are marked on first touch).
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
      const std::uint32_t t = heap_.back();
      heap_.pop_back();
      const T ut = work_[prow_[t]];
      if (ut == T{}) continue; // exact numeric zero: no U entry, no update
      u_scratch_rows_.push_back(t);
      u_scratch_vals_.push_back(ut);
      for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
        const std::uint32_t r = l_rows_[p];
        const T delta = l_vals_[p] * ut;
        if (!mark_[r]) {
          mark_[r] = 1;
          touched_.push_back(r);
          work_[r] = -delta;
          if (pinv_[r] >= 0) {
            heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
            std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
          } else {
            unassigned_.push_back(r);
          }
        } else {
          work_[r] -= delta;
        }
      }
    }

    // Threshold partial pivoting among the not-yet-pivotal rows; the
    // diagonal row wins when within tol_ of the column maximum (keeps the
    // RCM profile), otherwise the max-magnitude row (handles the
    // zero-diagonal branch rows of voltage sources).
    double best = 0.0;
    std::uint32_t pr = 0;
    bool have = false;
    for (const std::uint32_t r : unassigned_) {
      const double m = std::abs(work_[r]);
      if (!have || m > best) {
        best = m;
        pr = r;
        have = true;
      }
    }
    if (!have || best < 1e-300) {
      singular = true;
    } else {
      if (col < n && pinv_[col] < 0 && mark_[col]) {
        const double dmag = std::abs(work_[col]);
        if (dmag > 0.0 && dmag >= tol_ * best) pr = col;
      }
      const T piv = work_[pr];
      pinv_[pr] = static_cast<std::int32_t>(k);
      prow_[k] = pr;
      diag_[k] = piv;

      u_rows_.insert(u_rows_.end(), u_scratch_rows_.begin(),
                     u_scratch_rows_.end());
      u_vals_.insert(u_vals_.end(), u_scratch_vals_.begin(),
                     u_scratch_vals_.end());
      u_ptr_.push_back(static_cast<std::uint32_t>(u_rows_.size()));

      for (const std::uint32_t r : unassigned_) {
        if (r == pr) continue;
        const T lv = work_[r] / piv;
        if (lv == T{}) continue;
        l_rows_.push_back(r);
        l_vals_.push_back(lv);
      }
      l_ptr_.push_back(static_cast<std::uint32_t>(l_rows_.size()));
    }

    for (const std::uint32_t r : touched_) {
      mark_[r] = 0;
      work_[r] = T{};
    }
  }
  return !singular;
}

template <typename T>
bool SparseSolverT<T>::solve(const std::vector<T>& b, std::vector<T>& x) {
  if (b.size() != dim_) {
    throw std::invalid_argument("SparseSolverT: rhs dimension mismatch");
  }
  if (pattern_dirty_) rebuild_symbolic();

  // Gather the slot-ordered accumulation into CSC order. Slots not stamped
  // in this pass hold zero, which keeps the pattern stable across passes.
  for (std::size_t s = 0; s < csc_of_slot_.size(); ++s) {
    csc_vals_[csc_of_slot_[s]] = vals_[s];
  }
  if (!factor_valid_ || csc_vals_ != cached_vals_) {
    factor_valid_ = false;
    if (!factor()) return false;
    cached_vals_ = csc_vals_;
    factor_valid_ = true;
    ++factor_count_;
  }

  const std::size_t n = dim_;
  x = b;
  // Forward solve through unit-diagonal L: columns in pivot order only ever
  // update rows with later pivot order.
  for (std::size_t t = 0; t < n; ++t) {
    const T ct = x[prow_[t]];
    if (ct == T{}) continue;
    for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
      x[l_rows_[p]] -= l_vals_[p] * ct;
    }
  }
  // Column-sweep back substitution through U.
  for (std::size_t k = n; k-- > 0;) {
    const T w = x[prow_[k]] / diag_[k];
    sol_[k] = w;
    if (w == T{}) continue;
    for (std::uint32_t p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p) {
      x[prow_[u_rows_[p]]] -= u_vals_[p] * w;
    }
  }
  // Undo the column permutation: position q_[k] of the solution is sol_[k].
  for (std::size_t k = 0; k < n; ++k) x[q_[k]] = sol_[k];
  return true;
}

template class SparseSolverT<double>;
template class SparseSolverT<std::complex<double>>;

} // namespace mss::spice
