#include "spice/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mss::spice {

namespace {

/// Symmetrised, deduplicated adjacency (diagonal excluded) of a CSC
/// pattern, in compact CSR form — the graph all three ordering routines
/// walk. adj[ptr[v] .. ptr[v] + deg[v]) are the sorted neighbours of v.
struct SymAdjacency {
  std::vector<std::uint32_t> ptr;
  std::vector<std::uint32_t> adj;
  std::vector<std::uint32_t> deg;
};

[[nodiscard]] SymAdjacency symmetrized_adjacency(
    std::size_t dim, const std::vector<std::uint32_t>& col_ptr,
    const std::vector<std::uint32_t>& row_ind) {
  if (col_ptr.size() != dim + 1) {
    throw std::invalid_argument("sparse ordering: bad column pointer array");
  }
  const auto n = static_cast<std::uint32_t>(dim);
  SymAdjacency out;
  out.deg.assign(dim, 0);
  for (std::uint32_t c = 0; c < n; ++c) {
    for (std::uint32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
      const std::uint32_t r = row_ind[p];
      if (r == c) continue;
      ++out.deg[r];
      ++out.deg[c];
    }
  }
  out.ptr.assign(dim + 1, 0);
  for (std::size_t v = 0; v < dim; ++v) {
    out.ptr[v + 1] = out.ptr[v] + out.deg[v];
  }
  out.adj.resize(out.ptr[dim]);
  {
    std::vector<std::uint32_t> fill = out.ptr;
    for (std::uint32_t c = 0; c < n; ++c) {
      for (std::uint32_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
        const std::uint32_t r = row_ind[p];
        if (r == c) continue;
        out.adj[fill[r]++] = c;
        out.adj[fill[c]++] = r;
      }
    }
  }
  for (std::size_t v = 0; v < dim; ++v) {
    const auto b = out.adj.begin() + out.ptr[v];
    const auto e = out.adj.begin() + out.ptr[v] + out.deg[v];
    std::sort(b, e);
    const auto last = std::unique(b, e);
    out.deg[v] = static_cast<std::uint32_t>(last - b);
  }
  return out;
}

// Internal variants take a prebuilt adjacency so Ordering::Auto can run
// RCM, AMD, and both fill predictions off one graph construction.
[[nodiscard]] std::vector<std::uint32_t> rcm_from_adjacency(
    std::size_t dim, const SymAdjacency& g);
[[nodiscard]] std::vector<std::uint32_t> amd_from_adjacency(
    std::size_t dim, const SymAdjacency& g);
[[nodiscard]] std::size_t fill_from_adjacency(
    std::size_t dim, const SymAdjacency& g,
    const std::vector<std::uint32_t>& order);

} // namespace

// ---------------------------------------------------------------------------
// Reverse-Cuthill-McKee ordering
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> rcm_order(std::size_t dim,
                                     const std::vector<std::uint32_t>& col_ptr,
                                     const std::vector<std::uint32_t>& row_ind) {
  return rcm_from_adjacency(dim, symmetrized_adjacency(dim, col_ptr, row_ind));
}

namespace {

std::vector<std::uint32_t> rcm_from_adjacency(std::size_t dim,
                                              const SymAdjacency& g) {
  const auto n = static_cast<std::uint32_t>(dim);

  std::vector<std::uint8_t> visited(dim, 0);
  std::vector<std::uint32_t> order;
  order.reserve(dim);
  std::vector<std::uint32_t> frontier, next;

  // Plain BFS used both for the pseudo-peripheral search and the CM sweep.
  const auto bfs = [&](std::uint32_t seed, bool record) -> std::uint32_t {
    std::vector<std::uint8_t> seen(dim, 0);
    seen[seed] = 1;
    frontier.assign(1, seed);
    std::uint32_t last_min_deg = seed;
    while (!frontier.empty()) {
      next.clear();
      for (const std::uint32_t v : frontier) {
        if (record) order.push_back(v);
        // Neighbours in ascending-degree order — the Cuthill-McKee rule.
        const std::uint32_t b = g.ptr[v];
        std::vector<std::uint32_t> nbrs(g.adj.begin() + b,
                                        g.adj.begin() + b + g.deg[v]);
        std::sort(nbrs.begin(), nbrs.end(),
                  [&](std::uint32_t x, std::uint32_t y) {
                    return g.deg[x] != g.deg[y] ? g.deg[x] < g.deg[y] : x < y;
                  });
        for (const std::uint32_t w : nbrs) {
          if (!seen[w]) {
            seen[w] = 1;
            next.push_back(w);
          }
        }
      }
      if (!next.empty()) {
        last_min_deg = *std::min_element(
            next.begin(), next.end(), [&](std::uint32_t x, std::uint32_t y) {
              return g.deg[x] != g.deg[y] ? g.deg[x] < g.deg[y] : x < y;
            });
      }
      frontier.swap(next);
    }
    if (record) {
      for (const std::uint32_t v : order) visited[v] = 1;
    }
    return last_min_deg;
  };

  for (std::uint32_t v0 = 0; v0 < n; ++v0) {
    if (visited[v0]) continue;
    // Pseudo-peripheral seed: two BFS hops towards an eccentric vertex.
    std::uint32_t seed = v0;
    seed = bfs(seed, /*record=*/false);
    seed = bfs(seed, /*record=*/false);
    bfs(seed, /*record=*/true);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

} // namespace

// ---------------------------------------------------------------------------
// Approximate-minimum-degree ordering
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> amd_order(std::size_t dim,
                                     const std::vector<std::uint32_t>& col_ptr,
                                     const std::vector<std::uint32_t>& row_ind) {
  return amd_from_adjacency(dim, symmetrized_adjacency(dim, col_ptr, row_ind));
}

namespace {

std::vector<std::uint32_t> amd_from_adjacency(std::size_t dim,
                                              const SymAdjacency& g) {
  const auto n = static_cast<std::uint32_t>(dim);

  // Quotient-graph state. Eliminating v turns it into an *element* whose
  // pivot list covers v's live neighbourhood; variables keep a list of
  // plain variable neighbours (avars) and adjacent elements (aelems).
  std::vector<std::vector<std::uint32_t>> avars(dim), aelems(dim);
  std::vector<std::vector<std::uint32_t>> elem_vars; // by element id
  std::vector<std::uint8_t> absorbed;                // by element id
  for (std::uint32_t v = 0; v < n; ++v) {
    avars[v].assign(g.adj.begin() + g.ptr[v],
                    g.adj.begin() + g.ptr[v] + g.deg[v]);
  }

  std::vector<std::uint32_t> adeg(dim);
  for (std::size_t v = 0; v < dim; ++v) adeg[v] = g.deg[v];

  // Lazy min-heap of (degree, vertex); stale entries are skipped on pop.
  using Entry = std::pair<std::uint32_t, std::uint32_t>;
  std::vector<Entry> heap;
  heap.reserve(dim);
  const auto cmp = std::greater<Entry>();
  for (std::uint32_t v = 0; v < n; ++v) heap.emplace_back(adeg[v], v);
  std::make_heap(heap.begin(), heap.end(), cmp);

  std::vector<std::uint8_t> eliminated(dim, 0);
  std::vector<std::uint32_t> stamp(dim, 0);
  std::uint32_t stamp_ctr = 0;
  std::vector<std::uint32_t> order;
  order.reserve(dim);
  std::vector<std::uint32_t> lv; // pivot list of the element being formed

  while (order.size() < dim) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const auto [d, v] = heap.back();
    heap.pop_back();
    if (eliminated[v] || d != adeg[v]) continue; // stale entry

    // Element list Lv = live neighbourhood of v: plain variable
    // neighbours plus the members of every adjacent element.
    ++stamp_ctr;
    stamp[v] = stamp_ctr;
    lv.clear();
    for (const std::uint32_t u : avars[v]) {
      if (!eliminated[u] && stamp[u] != stamp_ctr) {
        stamp[u] = stamp_ctr;
        lv.push_back(u);
      }
    }
    for (const std::uint32_t e : aelems[v]) {
      for (const std::uint32_t u : elem_vars[e]) {
        if (!eliminated[u] && u != v && stamp[u] != stamp_ctr) {
          stamp[u] = stamp_ctr;
          lv.push_back(u);
        }
      }
    }
    // Absorb the elements v was attached to — their cliques are subsumed
    // by the new element.
    for (const std::uint32_t e : aelems[v]) {
      absorbed[e] = 1;
      elem_vars[e].clear();
      elem_vars[e].shrink_to_fit();
    }
    const auto eid = static_cast<std::uint32_t>(elem_vars.size());
    elem_vars.push_back(lv);
    absorbed.push_back(0);
    eliminated[v] = 1;
    order.push_back(v);

    // Update each member of the new element: prune variable neighbours now
    // covered by the element (v itself and every other Lv member), drop
    // absorbed elements, attach the new one, and recompute the
    // approximate degree |avars| + sum of adjacent element sizes (minus
    // self per element) — the classic AMD overcount bound.
    for (const std::uint32_t u : lv) {
      auto& av = avars[u];
      av.erase(std::remove_if(av.begin(), av.end(),
                              [&](std::uint32_t w) {
                                return eliminated[w] || stamp[w] == stamp_ctr;
                              }),
               av.end());
      auto& ae = aelems[u];
      ae.erase(std::remove_if(ae.begin(), ae.end(),
                              [&](std::uint32_t e) { return absorbed[e] != 0; }),
               ae.end());
      ae.push_back(eid);
      std::size_t deg_u = av.size();
      for (const std::uint32_t e : ae) deg_u += elem_vars[e].size() - 1;
      adeg[u] = static_cast<std::uint32_t>(
          std::min<std::size_t>(deg_u, dim == 0 ? 0 : dim - 1));
      heap.emplace_back(adeg[u], u);
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  return order;
}

} // namespace

// ---------------------------------------------------------------------------
// Symbolic fill prediction
// ---------------------------------------------------------------------------

std::size_t symbolic_fill(std::size_t dim,
                          const std::vector<std::uint32_t>& col_ptr,
                          const std::vector<std::uint32_t>& row_ind,
                          const std::vector<std::uint32_t>& order) {
  if (order.size() != dim) {
    throw std::invalid_argument("symbolic_fill: order size mismatch");
  }
  return fill_from_adjacency(dim, symmetrized_adjacency(dim, col_ptr, row_ind),
                             order);
}

namespace {

std::size_t fill_from_adjacency(std::size_t dim, const SymAdjacency& g,
                                const std::vector<std::uint32_t>& order) {
  std::vector<std::uint32_t> pos(dim);
  for (std::uint32_t k = 0; k < dim; ++k) pos[order[k]] = k;

  // George-Liu row-structure walk: row k of L holds the nodes on the
  // elimination-tree paths from each below-diagonal neighbour up towards
  // k; the tree is built on the fly (parent set at first discovery).
  std::vector<std::int32_t> parent(dim, -1);
  std::vector<std::int32_t> mark(dim, -1);
  std::size_t nnz_l = dim; // diagonal
  for (std::uint32_t k = 0; k < dim; ++k) {
    const std::uint32_t v = order[k];
    mark[k] = static_cast<std::int32_t>(k);
    for (std::uint32_t p = g.ptr[v]; p < g.ptr[v] + g.deg[v]; ++p) {
      std::uint32_t j = pos[g.adj[p]];
      if (j >= k) continue;
      while (mark[j] != static_cast<std::int32_t>(k)) {
        mark[j] = static_cast<std::int32_t>(k);
        ++nnz_l;
        if (parent[j] < 0) {
          parent[j] = static_cast<std::int32_t>(k);
          break;
        }
        j = static_cast<std::uint32_t>(parent[j]);
      }
    }
  }
  return nnz_l;
}

} // namespace

// ---------------------------------------------------------------------------
// SparseSolverT
// ---------------------------------------------------------------------------

template <typename T>
SparseSolverT<T>::SparseSolverT(double pivot_tol) : tol_(pivot_tol) {
  if (tol_ <= 0.0 || tol_ > 1.0) {
    throw std::invalid_argument("SparseSolverT: pivot_tol must be in (0, 1]");
  }
}

template <typename T>
void SparseSolverT<T>::set_ordering(Ordering ordering) {
  if (ordering == ordering_) return;
  ordering_ = ordering;
  pattern_dirty_ = true; // re-run the symbolic phase under the new policy
}

template <typename T>
void SparseSolverT<T>::begin(std::size_t dim) {
  if (dim != dim_) {
    dim_ = dim;
    slot_of_.clear();
    slot_row_.clear();
    slot_col_.clear();
    vals_.clear();
    pattern_dirty_ = true;
    factor_valid_ = false;
    this->bump_epoch(); // outstanding slot handles are now meaningless
  }
  std::fill(vals_.begin(), vals_.end(), T{});
}

template <typename T>
std::uint32_t SparseSolverT<T>::slot(std::size_t i, std::size_t j) {
  const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) |
                            static_cast<std::uint64_t>(j);
  const auto [it, inserted] =
      slot_of_.try_emplace(key, static_cast<std::uint32_t>(slot_row_.size()));
  if (inserted) {
    slot_row_.push_back(static_cast<std::uint32_t>(i));
    slot_col_.push_back(static_cast<std::uint32_t>(j));
    vals_.push_back(T{});
    pattern_dirty_ = true;
  }
  return it->second;
}

template <typename T>
void SparseSolverT<T>::add(std::size_t i, std::size_t j, T v) {
  vals_[slot(i, j)] += v;
}

template <typename T>
void SparseSolverT<T>::rebuild_symbolic() {
  const std::size_t nnz = slot_row_.size();
  // Sort slots by (col, row) to obtain the CSC layout and the slot -> CSC
  // scatter map used by every later gather.
  std::vector<std::uint32_t> perm(nnz);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return slot_col_[a] != slot_col_[b] ? slot_col_[a] < slot_col_[b]
                                        : slot_row_[a] < slot_row_[b];
  });
  col_ptr_.assign(dim_ + 1, 0);
  for (std::size_t s = 0; s < nnz; ++s) ++col_ptr_[slot_col_[s] + 1];
  for (std::size_t c = 0; c < dim_; ++c) col_ptr_[c + 1] += col_ptr_[c];
  row_ind_.resize(nnz);
  csc_of_slot_.resize(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::uint32_t s = perm[k];
    row_ind_[k] = slot_row_[s];
    csc_of_slot_[s] = static_cast<std::uint32_t>(k);
  }

  switch (ordering_) {
    case Ordering::Natural:
      q_.resize(dim_);
      std::iota(q_.begin(), q_.end(), 0u);
      ordering_used_ = "natural";
      break;
    case Ordering::Rcm:
      q_ = rcm_order(dim_, col_ptr_, row_ind_);
      ordering_used_ = "rcm";
      break;
    case Ordering::Amd:
      q_ = amd_order(dim_, col_ptr_, row_ind_);
      ordering_used_ = "amd";
      break;
    case Ordering::Auto: {
      // Profile heuristic vs fill heuristic: predict nnz(L) for both and
      // keep the winner. One-time cost per pattern, O(nnz(L)) each, off a
      // single shared adjacency construction.
      const SymAdjacency g = symmetrized_adjacency(dim_, col_ptr_, row_ind_);
      auto rcm = rcm_from_adjacency(dim_, g);
      auto amd = amd_from_adjacency(dim_, g);
      const std::size_t fill_rcm = fill_from_adjacency(dim_, g, rcm);
      const std::size_t fill_amd = fill_from_adjacency(dim_, g, amd);
      if (fill_amd < fill_rcm) {
        q_ = std::move(amd);
        ordering_used_ = "amd";
      } else {
        q_ = std::move(rcm);
        ordering_used_ = "rcm";
      }
      break;
    }
  }
  qpos_.resize(dim_);
  for (std::uint32_t k = 0; k < dim_; ++k) qpos_[q_[k]] = k;

  csc_vals_.assign(nnz, T{});
  cached_vals_.assign(nnz, T{});
  work_.assign(dim_, T{});
  mark_.assign(dim_, 0);
  pinv_.assign(dim_, -1);
  prow_.assign(dim_, 0);
  diag_.assign(dim_, T{});
  sol_.assign(dim_, T{});
  heap_.clear();
  unassigned_.clear();
  pattern_dirty_ = false;
  factor_valid_ = false;
}

template <typename T>
std::size_t SparseSolverT<T>::factor_nnz() const {
  return l_rows_.size() + u_rows_.size() + dim_; // + unit/diag entries
}

template <typename T>
bool SparseSolverT<T>::factor(std::size_t start) {
  const std::size_t n = dim_;
  if (start == 0) {
    l_ptr_.assign(1, 0);
    l_rows_.clear();
    l_vals_.clear();
    u_ptr_.assign(1, 0);
    u_rows_.clear();
    u_vals_.clear();
    std::fill(pinv_.begin(), pinv_.end(), -1);
  } else {
    // Keep the factored prefix [0, start); free the pivot assignments of
    // the recomputed suffix (prow_ is complete — partial restarts only run
    // on top of a full valid factorization).
    for (std::size_t k = start; k < n; ++k) pinv_[prow_[k]] = -1;
    l_rows_.resize(l_ptr_[start]);
    l_vals_.resize(l_ptr_[start]);
    l_ptr_.resize(start + 1);
    u_rows_.resize(u_ptr_[start]);
    u_vals_.resize(u_ptr_[start]);
    u_ptr_.resize(start + 1);
  }
  last_factor_start_ = start;
  factor_cols_total_ += n - start;

  const auto heap_cmp = std::greater<std::uint32_t>();
  bool singular = false;

  for (std::size_t k = start; k < n && !singular; ++k) {
    const std::uint32_t col = q_[k];
    heap_.clear();
    unassigned_.clear();
    u_scratch_rows_.clear();
    u_scratch_vals_.clear();
    touched_.clear();

    // Scatter A(:, col). The assembled pattern has unique positions, so a
    // plain store per row suffices.
    for (std::uint32_t p = col_ptr_[col]; p < col_ptr_[col + 1]; ++p) {
      const std::uint32_t r = row_ind_[p];
      work_[r] = csc_vals_[p];
      mark_[r] = 1;
      touched_.push_back(r);
      if (pinv_[r] >= 0) {
        heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
        std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
      } else {
        unassigned_.push_back(r);
      }
    }

    // Left-looking update: apply earlier pivot columns in ascending pivot
    // order. Fill introduced by column t is always assigned to a pivot
    // later than t (or unassigned), so the min-heap pops monotonically and
    // each pivot is pushed at most once (rows are marked on first touch).
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
      const std::uint32_t t = heap_.back();
      heap_.pop_back();
      const T ut = work_[prow_[t]];
      if (ut == T{}) continue; // exact numeric zero: no U entry, no update
      u_scratch_rows_.push_back(t);
      u_scratch_vals_.push_back(ut);
      for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
        const std::uint32_t r = l_rows_[p];
        const T delta = l_vals_[p] * ut;
        if (!mark_[r]) {
          mark_[r] = 1;
          touched_.push_back(r);
          work_[r] = -delta;
          if (pinv_[r] >= 0) {
            heap_.push_back(static_cast<std::uint32_t>(pinv_[r]));
            std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
          } else {
            unassigned_.push_back(r);
          }
        } else {
          work_[r] -= delta;
        }
      }
    }

    // Threshold partial pivoting among the not-yet-pivotal rows; the
    // diagonal row wins when within tol_ of the column maximum (keeps the
    // ordering's structure), otherwise the max-magnitude row (handles the
    // zero-diagonal branch rows of voltage sources).
    double best = 0.0;
    std::uint32_t pr = 0;
    bool have = false;
    for (const std::uint32_t r : unassigned_) {
      const double m = std::abs(work_[r]);
      if (!have || m > best) {
        best = m;
        pr = r;
        have = true;
      }
    }
    if (!have || best < 1e-300) {
      singular = true;
    } else {
      if (col < n && pinv_[col] < 0 && mark_[col]) {
        const double dmag = std::abs(work_[col]);
        if (dmag > 0.0 && dmag >= tol_ * best) pr = col;
      }
      const T piv = work_[pr];
      pinv_[pr] = static_cast<std::int32_t>(k);
      prow_[k] = pr;
      diag_[k] = piv;

      u_rows_.insert(u_rows_.end(), u_scratch_rows_.begin(),
                     u_scratch_rows_.end());
      u_vals_.insert(u_vals_.end(), u_scratch_vals_.begin(),
                     u_scratch_vals_.end());
      u_ptr_.push_back(static_cast<std::uint32_t>(u_rows_.size()));

      for (const std::uint32_t r : unassigned_) {
        if (r == pr) continue;
        const T lv = work_[r] / piv;
        if (lv == T{}) continue;
        l_rows_.push_back(r);
        l_vals_.push_back(lv);
      }
      l_ptr_.push_back(static_cast<std::uint32_t>(l_rows_.size()));
    }

    for (const std::uint32_t r : touched_) {
      mark_[r] = 0;
      work_[r] = T{};
    }
  }
  return !singular;
}

template <typename T>
bool SparseSolverT<T>::solve(const std::vector<T>& b, std::vector<T>& x) {
  if (b.size() != dim_) {
    throw std::invalid_argument("SparseSolverT: rhs dimension mismatch");
  }
  if (pattern_dirty_) rebuild_symbolic();

  // Gather the slot-ordered accumulation into CSC order. Slots not stamped
  // in this pass hold zero, which keeps the pattern stable across passes.
  for (std::size_t s = 0; s < csc_of_slot_.size(); ++s) {
    csc_vals_[csc_of_slot_[s]] = vals_[s];
  }

  // Dirty scan, column-wise: the first changed pivot position bounds what
  // the refactorization must recompute (a left-looking column depends only
  // on its A column and earlier pivot columns).
  std::size_t first_dirty = std::numeric_limits<std::size_t>::max();
  if (factor_valid_) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if (qpos_[c] >= first_dirty) continue; // cannot lower the bound
      for (std::uint32_t p = col_ptr_[c]; p < col_ptr_[c + 1]; ++p) {
        if (csc_vals_[p] != cached_vals_[p]) {
          first_dirty = qpos_[c];
          break;
        }
      }
    }
  } else {
    first_dirty = 0;
  }

  if (first_dirty != std::numeric_limits<std::size_t>::max()) {
    const std::size_t start =
        (partial_ && factor_valid_) ? first_dirty : std::size_t{0};
    factor_valid_ = false;
    if (!factor(start)) return false;
    cached_vals_ = csc_vals_;
    factor_valid_ = true;
    ++factor_count_;
  }

  const std::size_t n = dim_;
  x = b;
  // Forward solve through unit-diagonal L: columns in pivot order only ever
  // update rows with later pivot order.
  for (std::size_t t = 0; t < n; ++t) {
    const T ct = x[prow_[t]];
    if (ct == T{}) continue;
    for (std::uint32_t p = l_ptr_[t]; p < l_ptr_[t + 1]; ++p) {
      x[l_rows_[p]] -= l_vals_[p] * ct;
    }
  }
  // Column-sweep back substitution through U.
  for (std::size_t k = n; k-- > 0;) {
    const T w = x[prow_[k]] / diag_[k];
    sol_[k] = w;
    if (w == T{}) continue;
    for (std::uint32_t p = u_ptr_[k]; p < u_ptr_[k + 1]; ++p) {
      x[prow_[u_rows_[p]]] -= u_vals_[p] * w;
    }
  }
  // Undo the column permutation: position q_[k] of the solution is sol_[k].
  for (std::size_t k = 0; k < n; ++k) x[q_[k]] = sol_[k];
  return true;
}

template class SparseSolverT<double>;
template class SparseSolverT<std::complex<double>>;

} // namespace mss::spice
