#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/elements.hpp"
#include "spice/partition.hpp"
#include "util/parallel.hpp"

namespace mss::spice {

std::size_t TransientResult::idx_of_node(const std::string& node) const {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw std::out_of_range("TransientResult: unknown node '" + node + "'");
  }
  return it->second;
}

std::size_t TransientResult::idx_of_source(const std::string& vsource) const {
  auto it = source_branch_.find(vsource);
  if (it == source_branch_.end()) {
    throw std::out_of_range("TransientResult: unknown source '" + vsource +
                            "'");
  }
  return it->second;
}

double TransientResult::v(const std::string& node, std::size_t k) const {
  if (node == "0" || node == "gnd" || node == "GND") return 0.0;
  return samples_[k][idx_of_node(node)];
}

double TransientResult::v_at(const std::string& node, double t) const {
  if (node == "0" || node == "gnd" || node == "GND") return 0.0;
  if (times_.empty()) {
    throw std::out_of_range("TransientResult: empty result");
  }
  const std::size_t idx = idx_of_node(node);
  if (t <= times_.front()) return samples_.front()[idx];
  if (t >= times_.back()) return samples_.back()[idx];
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double t0 = times_[lo], t1 = times_[hi];
  const double w = t1 > t0 ? (t - t0) / (t1 - t0) : 0.0;
  return samples_[lo][idx] + w * (samples_[hi][idx] - samples_[lo][idx]);
}

std::vector<double> TransientResult::voltage(const std::string& node) const {
  std::vector<double> out(times_.size());
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = v(node, k);
  return out;
}

double TransientResult::i(const std::string& vsource, std::size_t k) const {
  return samples_[k][idx_of_source(vsource)];
}

std::vector<double> TransientResult::current(
    const std::string& vsource) const {
  std::vector<double> out(times_.size());
  const std::size_t idx = idx_of_source(vsource);
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = samples_[k][idx];
  return out;
}

bool TransientResult::has_node(const std::string& node) const {
  return node == "0" || node == "gnd" || node == "GND" ||
         node_index_.count(node) > 0;
}

bool TransientResult::has_source(const std::string& vsource) const {
  return source_branch_.count(vsource) > 0;
}

Engine::Engine(Circuit& circuit, EngineOptions options)
    : ckt_(circuit), opt_(options) {}

void Engine::ensure_workspace(std::size_t dim) {
  if (ws_dim_ == dim && solver_) return;
  SolverOptions so;
  so.kind = opt_.solver;
  so.ordering = opt_.ordering;
  so.partial_refactor = opt_.partial_refactor;
  so.supernodal = opt_.supernodal;
  if (opt_.partitioned && opt_.partition.size() == dim &&
      resolve_solver(opt_.solver, dim) == SolverKind::Sparse) {
    auto schur = std::make_unique<SchurSolver>(opt_.partition, so);
    schur->set_threads(opt_.partition_threads);
    solver_ = std::move(schur);
  } else {
    solver_ = make_solver(so, dim);
  }
  rhs_.assign(dim, 0.0);
  x_new_.assign(dim, 0.0);
  ws_dim_ = dim;
  shard_vals_.clear();
  shard_rhs_.clear();
  shard_of_elem_.clear();
  shard_elem_count_ = 0;
}

bool Engine::stamp_sharded(const Solution& sol, const StampContext& ctx,
                           std::size_t dim, int threads) {
  const std::size_t nslots = solver_->slot_count();
  if (nslots == 0) return false; // no stable slot storage / first pass
  const std::size_t nshards =
      threads <= 0 ? util::ThreadPool::global().size()
                   : static_cast<std::size_t>(threads);
  if (nshards < 2) return false;

  auto& elems = ckt_.elements();
  const std::size_t ne = elems.size();
  if (shard_of_elem_.size() != ne || shard_vals_.size() != nshards ||
      shard_elem_count_ != ne) {
    // Shard 0 is the shared/serial group; groups >= 0 round-robin over the
    // remaining shards. Declaration order is preserved inside a shard, so
    // per-slot accumulation order matches the serial pass.
    shard_of_elem_.resize(ne);
    for (std::size_t i = 0; i < ne; ++i) {
      const int g = elems[i]->stamp_group();
      shard_of_elem_[i] =
          g < 0 ? 0u
                : 1u + static_cast<std::uint32_t>(g) %
                           static_cast<std::uint32_t>(nshards - 1);
    }
    shard_vals_.assign(nshards, {});
    shard_rhs_.assign(nshards, {});
    shard_elem_count_ = ne;
  }

  std::vector<std::uint8_t> missed(nshards, 0);
  util::ThreadPool::run_with(
      nshards, nshards, 1,
      [&](std::size_t s, std::size_t, std::size_t) {
        shard_vals_[s].assign(nslots, 0.0);
        shard_rhs_[s].assign(dim, 0.0);
        MnaSystem sys(*solver_, shard_rhs_[s], shard_vals_[s].data());
        for (std::size_t i = 0; i < ne; ++i) {
          if (shard_of_elem_[i] != s) continue;
          elems[i]->stamp(sys, sol, ctx);
          if (sys.sink_missed()) break;
        }
        missed[s] = sys.sink_missed() ? 1 : 0;
      });
  for (std::size_t s = 0; s < nshards; ++s) {
    if (missed[s]) return false; // cold caches: caller restamps serially
  }

  // Combine in shard order. Exclusive stamp groups mean each slot / rhs
  // row receives exactly one shard's accumulator, built by the same add
  // sequence the serial pass runs from the same +0.0 start — and a +0.0
  // accumulator can never turn into -0.0 — so skipping zero entries keeps
  // the assembled values bit-identical to serial stamping.
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::vector<double>& sv = shard_vals_[s];
    for (std::size_t slot = 0; slot < nslots; ++slot) {
      if (sv[slot] != 0.0) {
        solver_->add_slot(static_cast<std::uint32_t>(slot), sv[slot]);
      }
    }
    const std::vector<double>& sr = shard_rhs_[s];
    for (std::size_t i = 0; i < dim; ++i) rhs_[i] += sr[i];
  }
  return true;
}

bool Engine::solve(std::vector<double>& x, const StampContext& ctx,
                   std::size_t dim) {
  const std::size_t n_nodes = ckt_.node_count();
  ensure_workspace(dim);
  // Scanned every solve (allocation-free) so element-set changes between
  // analyses cannot leave a stale linearity assumption.
  const bool any_nonlinear = ckt_.any_nonlinear();
  const int iters = any_nonlinear ? opt_.max_newton : 1;

  const bool want_sharded = opt_.assembly_threads != 1 && opt_.stamp_cache;

  for (int it = 0; it < iters; ++it) {
    solver_->begin(dim);
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    MnaSystem sys(*solver_, rhs_, opt_.stamp_cache);
    const Solution sol(x);
    // Sharded stamping needs warm slot caches and an established pattern;
    // when it reports a miss the serial pass below both assembles this
    // iteration and warms every cache for the next one.
    const bool sharded =
        want_sharded && stamp_sharded(sol, ctx, dim, opt_.assembly_threads);
    if (!sharded) ckt_.stamp_all(sys, sol, ctx);
    // gmin to ground on every node row keeps floating nodes solvable; the
    // diagonal slots are cached like any element's stamp positions.
    if (opt_.stamp_cache) {
      gmin_slots_.add_all(*solver_, n_nodes, opt_.gmin);
    } else {
      for (std::size_t k = 0; k < n_nodes; ++k) {
        sys.add_g(static_cast<int>(k), static_cast<int>(k), opt_.gmin);
      }
    }

    // The solver's dirty-stamp cache handles both regimes: a linear circuit
    // restamps identical values on every step (only sources and companion
    // histories move the RHS) and back-substitutes against the cached
    // factorization; nonlinear stamps change per iteration and refactor —
    // partially, when only late-ordered device columns moved.
    if (!solver_->solve(rhs_, x_new_)) return false;

    if (!any_nonlinear) {
      x = x_new_;
      return true;
    }

    // Damped update + convergence check.
    double worst = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      double dxk = x_new_[k] - x[k];
      if (k < n_nodes) {
        dxk = std::clamp(dxk, -opt_.damping, opt_.damping);
      }
      x[k] += dxk;
      worst = std::max(worst, std::abs(dxk) / std::max(1.0, std::abs(x[k])));
    }
    if (worst <= opt_.vtol) return true;
  }
  return false;
}

DcResult Engine::dc() {
  const std::size_t dim = ckt_.assign_unknowns();
  DcResult out;
  out.x.assign(dim, 0.0);
  StampContext ctx;
  ctx.kind = AnalysisKind::Dc;
  ctx.t = 0.0;
  ctx.dt = 0.0;
  out.converged = solve(out.x, ctx, dim);
  return out;
}

void Engine::init_result_maps(TransientResult& res) const {
  for (std::size_t k = 0; k < ckt_.node_count(); ++k) {
    res.node_index_.emplace(ckt_.node_name(k), k);
  }
  for (const auto& e : ckt_.elements()) {
    if (const auto* vs = dynamic_cast<const VoltageSource*>(e.get())) {
      res.source_branch_.emplace(vs->name(), vs->branch_index());
    }
  }
}

void Engine::commit_all(const std::vector<double>& x,
                        const StampContext& ctx) {
  const Solution sol(x);
  for (auto& e : ckt_.elements()) e->commit(sol, ctx);
}

TransientResult Engine::transient(double t_stop, double dt,
                                  bool use_initial_conditions) {
  if (t_stop <= 0.0 || dt <= 0.0 || dt > t_stop) {
    throw std::invalid_argument("Engine::transient: bad time parameters");
  }
  const std::size_t dim = ckt_.assign_unknowns();

  TransientResult res;
  init_result_maps(res);

  for (auto& e : ckt_.elements()) e->reset();

  // Preallocate the full waveform storage so the stepping loop below only
  // copies into existing buffers: after this point the transient performs
  // zero heap allocations per step.
  const auto steps = static_cast<std::size_t>(std::llround(t_stop / dt));
  res.times_.assign(steps + 1, 0.0);
  res.samples_.assign(steps + 1, std::vector<double>(dim, 0.0));

  std::vector<double> x(dim, 0.0);
  if (!use_initial_conditions) {
    StampContext dc_ctx;
    dc_ctx.kind = AnalysisKind::Dc;
    if (!solve(x, dc_ctx, dim)) res.converged_ = false;
    commit_all(x, dc_ctx);
  }
  res.times_[0] = 0.0;
  res.samples_[0] = x;

  for (std::size_t k = 0; k < steps; ++k) {
    StampContext ctx;
    ctx.kind = AnalysisKind::Transient;
    ctx.method = opt_.method;
    ctx.t = double(k + 1) * dt;
    ctx.dt = dt;
    ctx.first_step = (k == 0);
    if (!solve(x, ctx, dim)) res.converged_ = false;
    commit_all(x, ctx);
    res.times_[k + 1] = ctx.t;
    res.samples_[k + 1] = x;
  }
  return res;
}

TransientResult Engine::transient_adaptive(double t_stop, double dt_initial,
                                           AdaptiveOptions adaptive,
                                           bool use_initial_conditions) {
  if (t_stop <= 0.0 || dt_initial <= 0.0 || dt_initial > t_stop) {
    throw std::invalid_argument(
        "Engine::transient_adaptive: bad time parameters");
  }
  const std::size_t dim = ckt_.assign_unknowns();
  const double dt_min =
      adaptive.dt_min > 0.0 ? adaptive.dt_min : dt_initial / 1024.0;
  const double dt_max = adaptive.dt_max > 0.0
                            ? adaptive.dt_max
                            : std::max(dt_initial, t_stop / 16.0);

  TransientResult res;
  init_result_maps(res);
  for (auto& e : ckt_.elements()) e->reset();

  // Hard time points the controller must land on: source-waveform corners
  // (pulse/PWL breakpoints) and t_stop itself. Deduplicated within a
  // relative epsilon so a shared pulse edge appears once.
  std::vector<double> bps;
  for (const auto& e : ckt_.elements()) e->append_breakpoints(t_stop, bps);
  bps.push_back(t_stop);
  std::sort(bps.begin(), bps.end());
  const double bp_eps = 1e-12 * t_stop;
  bps.erase(std::unique(bps.begin(), bps.end(),
                        [&](double a, double b) { return b - a < bp_eps; }),
            bps.end());

  std::vector<double> x(dim, 0.0);
  if (!use_initial_conditions) {
    StampContext dc_ctx;
    dc_ctx.kind = AnalysisKind::Dc;
    if (!solve(x, dc_ctx, dim)) res.converged_ = false;
    commit_all(x, dc_ctx);
  }
  res.times_.push_back(0.0);
  res.samples_.push_back(x);

  // Step-doubling controller: the error of one dt step against two dt/2
  // steps estimates the local truncation error; the (more accurate)
  // half-step solution is what gets accepted. Element histories advance
  // with the half steps, so every element sees a plain sequence of
  // committed steps; a rejected trial rolls them back via
  // save_state/restore_state.
  const double p_exp =
      adaptive.method == Integrator::Trapezoidal ? 1.0 / 3.0 : 1.0 / 2.0;
  std::vector<double> x_full, x_half, x_saved;
  double t = 0.0;
  double dt = std::min(dt_initial, dt_max);
  bool has_history = false; // any transient step committed yet (BE -> trap)
  std::size_t next_bp = 0;
  const double t_end_eps = 1e-9 * t_stop;

  // Predictor-estimator history: the state and step size of the last
  // accepted step, enough to extrapolate a linear predictor. The first
  // step has no history and falls back to step doubling.
  const bool use_pred = adaptive.estimator == LteEstimator::Predictor;
  std::vector<double> x_prev;
  double dt_prev = 0.0;
  bool have_prev = false;

  while (t < t_stop - t_end_eps) {
    while (next_bp < bps.size() && bps[next_bp] <= t + bp_eps) ++next_bp;
    const double t_target = next_bp < bps.size() ? bps[next_bp] : t_stop;
    const double dt_cruise = std::min(dt, dt_max);
    double dt_eff = dt_cruise;
    // Land exactly on the breakpoint; stretch a hair-short final gap onto
    // this step rather than leaving an unsteppable sliver.
    if (t + dt_eff >= t_target - bp_eps) {
      dt_eff = t_target - t;
    } else if (t + 1.5 * dt_eff > t_target) {
      dt_eff = 0.5 * (t_target - t);
    }
    const bool clipped = dt_eff < dt_cruise * (1.0 - 1e-12);

    for (auto& e : ckt_.elements()) e->save_state();
    x_saved = x;
    const bool saved_history = has_history;

    StampContext ctx;
    ctx.kind = AnalysisKind::Transient;
    ctx.method = adaptive.method;

    // Predictor estimator: a single Newton solve of the full step, judged
    // against the explicit linear extrapolation from the previous accepted
    // step. Milne device for the BE/extrapolation pair: with exact
    // history, corr - exact = (dt^2/2) x'' and pred - exact =
    // -(dt(dt + dt_prev)/2) x'', so corr - pred = (dt(2dt + dt_prev)/2)
    // x'' and the weight dt/(2dt + dt_prev) recovers the corrector LTE.
    const bool pred_step = use_pred && have_prev;
    bool ok = true;
    double err = 0.0;
    if (pred_step) {
      x_half = x; // the accepted-solution buffer either way
      ctx.t = t + dt_eff;
      ctx.dt = dt_eff;
      ctx.first_step = !has_history;
      ok = solve(x_half, ctx, dim);
      if (ok) {
        const double r = dt_eff / dt_prev;
        const double w = dt_eff / (2.0 * dt_eff + dt_prev);
        for (std::size_t k = 0; k < dim; ++k) {
          const double x_pred = x_saved[k] + r * (x_saved[k] - x_prev[k]);
          const double scale =
              adaptive.ltol_abs +
              adaptive.ltol_rel *
                  std::max(std::abs(x_half[k]), std::abs(x_saved[k]));
          err = std::max(err, w * std::abs(x_half[k] - x_pred) / scale);
        }
      }
    } else {
      // Trial 1: one full step.
      x_full = x;
      ctx.t = t + dt_eff;
      ctx.dt = dt_eff;
      ctx.first_step = !has_history;
      ok = solve(x_full, ctx, dim) && ok;

      // Trial 2: two half steps (committing the midpoint so the second
      // half sees its history).
      x_half = x;
      ctx.t = t + 0.5 * dt_eff;
      ctx.dt = 0.5 * dt_eff;
      ctx.first_step = !has_history;
      ok = solve(x_half, ctx, dim) && ok;
      commit_all(x_half, ctx);
      has_history = true;
      ctx.t = t + dt_eff;
      ctx.first_step = false;
      ok = solve(x_half, ctx, dim) && ok;

      if (ok) {
        for (std::size_t k = 0; k < dim; ++k) {
          const double scale =
              adaptive.ltol_abs +
              adaptive.ltol_rel *
                  std::max(std::abs(x_half[k]), std::abs(x_saved[k]));
          err = std::max(err, std::abs(x_full[k] - x_half[k]) / scale);
        }
      }
    }

    const bool at_floor = dt_eff <= dt_min * (1.0 + 1e-9);
    // Landing on a source breakpoint puts a derivative corner at the new
    // time point: the linear extrapolation across it is meaningless, so
    // the predictor history is dropped and the next step falls back to
    // step doubling (which never extrapolates).
    const bool at_corner =
        next_bp < bps.size() && t + dt_eff >= bps[next_bp] - bp_eps;
    if (ok && (err <= 1.0 || at_floor)) {
      // Accept; commit the full step (predictor) or second half (doubling).
      ctx.t = t + dt_eff;
      ctx.dt = pred_step ? dt_eff : 0.5 * dt_eff;
      ctx.first_step = pred_step ? !has_history : false;
      commit_all(x_half, ctx);
      has_history = true;
      if (use_pred) {
        x_prev = x_saved;
        dt_prev = dt_eff;
        have_prev = !at_corner;
      }
      x = x_half;
      t += dt_eff;
      res.times_.push_back(t);
      res.samples_.push_back(x);
      const double growth = std::min(
          adaptive.grow_limit,
          adaptive.safety * std::pow(std::max(err, 1e-12), -p_exp));
      // A step shortened only to land on a breakpoint says nothing about
      // the attainable step size: resume at the cruising dt afterwards
      // instead of re-growing from the sliver at grow_limit per step.
      const double proposed =
          clipped ? std::max(dt_cruise, dt_eff * growth) : dt_eff * growth;
      dt = std::clamp(proposed, dt_min, dt_max);
    } else if (at_floor) {
      // Newton failed at the smallest allowed step: record the failure and
      // push through, exactly like the fixed-step loop does.
      res.converged_ = false;
      ctx.t = t + dt_eff;
      ctx.dt = pred_step ? dt_eff : 0.5 * dt_eff;
      ctx.first_step = false;
      commit_all(x_half, ctx);
      has_history = true;
      if (use_pred) {
        x_prev = x_saved;
        dt_prev = dt_eff;
        have_prev = !at_corner;
      }
      x = x_half;
      t += dt_eff;
      res.times_.push_back(t);
      res.samples_.push_back(x);
      dt = dt_min;
    } else {
      // Reject: roll elements and the iterate back, shrink, retry.
      for (auto& e : ckt_.elements()) e->restore_state();
      x = x_saved;
      has_history = saved_history;
      ++res.rejected_;
      const double shrink =
          ok ? std::max(0.2, adaptive.safety * std::pow(err, -p_exp)) : 0.25;
      dt = std::max(dt_min, dt_eff * shrink);
    }
  }
  return res;
}

} // namespace mss::spice
