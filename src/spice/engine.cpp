#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/elements.hpp"

namespace mss::spice {

std::size_t TransientResult::idx_of_node(const std::string& node) const {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw std::out_of_range("TransientResult: unknown node '" + node + "'");
  }
  return it->second;
}

std::size_t TransientResult::idx_of_source(const std::string& vsource) const {
  auto it = source_branch_.find(vsource);
  if (it == source_branch_.end()) {
    throw std::out_of_range("TransientResult: unknown source '" + vsource +
                            "'");
  }
  return it->second;
}

double TransientResult::v(const std::string& node, std::size_t k) const {
  if (node == "0" || node == "gnd" || node == "GND") return 0.0;
  return samples_[k][idx_of_node(node)];
}

std::vector<double> TransientResult::voltage(const std::string& node) const {
  std::vector<double> out(times_.size());
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = v(node, k);
  return out;
}

double TransientResult::i(const std::string& vsource, std::size_t k) const {
  return samples_[k][idx_of_source(vsource)];
}

std::vector<double> TransientResult::current(
    const std::string& vsource) const {
  std::vector<double> out(times_.size());
  const std::size_t idx = idx_of_source(vsource);
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = samples_[k][idx];
  return out;
}

bool TransientResult::has_node(const std::string& node) const {
  return node == "0" || node == "gnd" || node == "GND" ||
         node_index_.count(node) > 0;
}

bool TransientResult::has_source(const std::string& vsource) const {
  return source_branch_.count(vsource) > 0;
}

Engine::Engine(Circuit& circuit, EngineOptions options)
    : ckt_(circuit), opt_(options) {}

void Engine::ensure_workspace(std::size_t dim) {
  if (ws_dim_ == dim && solver_) return;
  solver_ = make_solver(opt_.solver, dim);
  rhs_.assign(dim, 0.0);
  x_new_.assign(dim, 0.0);
  ws_dim_ = dim;
}

bool Engine::solve(std::vector<double>& x, const StampContext& ctx,
                   std::size_t dim) {
  const std::size_t n_nodes = ckt_.node_count();
  ensure_workspace(dim);
  // Scanned every solve (allocation-free) so element-set changes between
  // analyses cannot leave a stale linearity assumption.
  const bool any_nonlinear = ckt_.any_nonlinear();
  const int iters = any_nonlinear ? opt_.max_newton : 1;

  for (int it = 0; it < iters; ++it) {
    solver_->begin(dim);
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
    MnaSystem sys(*solver_, rhs_);
    const Solution sol(x);
    ckt_.stamp_all(sys, sol, ctx);
    // gmin to ground on every node row keeps floating nodes solvable.
    for (std::size_t k = 0; k < n_nodes; ++k) {
      sys.add_g(static_cast<int>(k), static_cast<int>(k), opt_.gmin);
    }

    // The solver's dirty-stamp cache handles both regimes: a linear circuit
    // restamps identical values on every step (only sources and companion
    // histories move the RHS) and back-substitutes against the cached
    // factorization; nonlinear stamps change per iteration and refactor.
    if (!solver_->solve(rhs_, x_new_)) return false;

    if (!any_nonlinear) {
      x = x_new_;
      return true;
    }

    // Damped update + convergence check.
    double worst = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      double dxk = x_new_[k] - x[k];
      if (k < n_nodes) {
        dxk = std::clamp(dxk, -opt_.damping, opt_.damping);
      }
      x[k] += dxk;
      worst = std::max(worst, std::abs(dxk) / std::max(1.0, std::abs(x[k])));
    }
    if (worst <= opt_.vtol) return true;
  }
  return false;
}

DcResult Engine::dc() {
  const std::size_t dim = ckt_.assign_unknowns();
  DcResult out;
  out.x.assign(dim, 0.0);
  StampContext ctx;
  ctx.kind = AnalysisKind::Dc;
  ctx.t = 0.0;
  ctx.dt = 0.0;
  out.converged = solve(out.x, ctx, dim);
  return out;
}

TransientResult Engine::transient(double t_stop, double dt,
                                  bool use_initial_conditions) {
  if (t_stop <= 0.0 || dt <= 0.0 || dt > t_stop) {
    throw std::invalid_argument("Engine::transient: bad time parameters");
  }
  const std::size_t dim = ckt_.assign_unknowns();

  TransientResult res;
  for (std::size_t k = 0; k < ckt_.node_count(); ++k) {
    res.node_index_.emplace(ckt_.node_name(k), k);
  }
  for (const auto& e : ckt_.elements()) {
    if (const auto* vs = dynamic_cast<const VoltageSource*>(e.get())) {
      res.source_branch_.emplace(vs->name(), vs->branch_index());
    }
  }

  for (auto& e : ckt_.elements()) e->reset();

  // Preallocate the full waveform storage so the stepping loop below only
  // copies into existing buffers: after this point the transient performs
  // zero heap allocations per step.
  const auto steps = static_cast<std::size_t>(std::llround(t_stop / dt));
  res.times_.assign(steps + 1, 0.0);
  res.samples_.assign(steps + 1, std::vector<double>(dim, 0.0));

  std::vector<double> x(dim, 0.0);
  if (!use_initial_conditions) {
    StampContext dc_ctx;
    dc_ctx.kind = AnalysisKind::Dc;
    if (!solve(x, dc_ctx, dim)) res.converged_ = false;
    const Solution sol(x);
    for (auto& e : ckt_.elements()) e->commit(sol, dc_ctx);
  }
  res.times_[0] = 0.0;
  res.samples_[0] = x;

  for (std::size_t k = 0; k < steps; ++k) {
    StampContext ctx;
    ctx.kind = AnalysisKind::Transient;
    ctx.method = opt_.method;
    ctx.t = double(k + 1) * dt;
    ctx.dt = dt;
    ctx.first_step = (k == 0);
    if (!solve(x, ctx, dim)) res.converged_ = false;
    const Solution sol(x);
    for (auto& e : ckt_.elements()) e->commit(sol, ctx);
    res.times_[k + 1] = ctx.t;
    res.samples_[k + 1] = x;
  }
  return res;
}

} // namespace mss::spice
