#include "spice/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/elements.hpp"
#include "spice/matrix.hpp"

namespace mss::spice {

std::size_t TransientResult::idx_of_node(const std::string& node) const {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw std::out_of_range("TransientResult: unknown node '" + node + "'");
  }
  return it->second;
}

std::size_t TransientResult::idx_of_source(const std::string& vsource) const {
  auto it = source_branch_.find(vsource);
  if (it == source_branch_.end()) {
    throw std::out_of_range("TransientResult: unknown source '" + vsource +
                            "'");
  }
  return it->second;
}

double TransientResult::v(const std::string& node, std::size_t k) const {
  if (node == "0" || node == "gnd" || node == "GND") return 0.0;
  return samples_[k][idx_of_node(node)];
}

std::vector<double> TransientResult::voltage(const std::string& node) const {
  std::vector<double> out(times_.size());
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = v(node, k);
  return out;
}

double TransientResult::i(const std::string& vsource, std::size_t k) const {
  return samples_[k][idx_of_source(vsource)];
}

std::vector<double> TransientResult::current(
    const std::string& vsource) const {
  std::vector<double> out(times_.size());
  const std::size_t idx = idx_of_source(vsource);
  for (std::size_t k = 0; k < times_.size(); ++k) out[k] = samples_[k][idx];
  return out;
}

bool TransientResult::has_node(const std::string& node) const {
  return node == "0" || node == "gnd" || node == "GND" ||
         node_index_.count(node) > 0;
}

bool TransientResult::has_source(const std::string& vsource) const {
  return source_branch_.count(vsource) > 0;
}

Engine::Engine(Circuit& circuit, EngineOptions options)
    : ckt_(circuit), opt_(options) {}

bool Engine::solve(std::vector<double>& x, const StampContext& ctx,
                   std::size_t dim) {
  const std::size_t n_nodes = ckt_.node_count();
  Matrix a(dim, dim);
  std::vector<double> g_flat(dim * dim, 0.0);
  std::vector<double> rhs(dim, 0.0);

  bool any_nonlinear = false;
  for (const auto& e : ckt_.elements()) {
    if (e->nonlinear()) {
      any_nonlinear = true;
      break;
    }
  }
  const int iters = any_nonlinear ? opt_.max_newton : 1;

  for (int it = 0; it < iters; ++it) {
    std::fill(g_flat.begin(), g_flat.end(), 0.0);
    std::fill(rhs.begin(), rhs.end(), 0.0);
    Stamper st(g_flat, rhs, dim);
    const Solution sol(x);
    for (const auto& e : ckt_.elements()) e->stamp(st, sol, ctx);
    // gmin to ground on every node row keeps floating nodes solvable.
    for (std::size_t k = 0; k < n_nodes; ++k) {
      g_flat[k * dim + k] += opt_.gmin;
    }
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) a.at(r, c) = g_flat[r * dim + c];
    }
    std::vector<double> x_new = rhs;
    if (!lu_solve(a, x_new)) return false;

    // A purely linear system is exact after one solve; damping only applies
    // to Newton steps of nonlinear circuits.
    if (!any_nonlinear) {
      x = std::move(x_new);
      return true;
    }

    // Damped update + convergence check.
    double worst = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      double dxk = x_new[k] - x[k];
      if (k < n_nodes) {
        dxk = std::clamp(dxk, -opt_.damping, opt_.damping);
      }
      x[k] += dxk;
      worst = std::max(worst, std::abs(dxk) / std::max(1.0, std::abs(x[k])));
    }
    if (worst <= opt_.vtol) return true;
  }
  return false;
}

DcResult Engine::dc() {
  const std::size_t dim = ckt_.assign_unknowns();
  DcResult out;
  out.x.assign(dim, 0.0);
  StampContext ctx;
  ctx.kind = AnalysisKind::Dc;
  ctx.t = 0.0;
  ctx.dt = 0.0;
  out.converged = solve(out.x, ctx, dim);
  return out;
}

TransientResult Engine::transient(double t_stop, double dt,
                                  bool use_initial_conditions) {
  if (t_stop <= 0.0 || dt <= 0.0 || dt > t_stop) {
    throw std::invalid_argument("Engine::transient: bad time parameters");
  }
  const std::size_t dim = ckt_.assign_unknowns();

  TransientResult res;
  for (std::size_t k = 0; k < ckt_.node_count(); ++k) {
    res.node_index_.emplace(ckt_.node_name(k), k);
  }
  for (const auto& e : ckt_.elements()) {
    if (const auto* vs = dynamic_cast<const VoltageSource*>(e.get())) {
      res.source_branch_.emplace(vs->name(), vs->branch_index());
    }
  }

  for (auto& e : ckt_.elements()) e->reset();

  std::vector<double> x(dim, 0.0);
  if (!use_initial_conditions) {
    StampContext dc_ctx;
    dc_ctx.kind = AnalysisKind::Dc;
    if (!solve(x, dc_ctx, dim)) res.converged_ = false;
    const Solution sol(x);
    for (auto& e : ckt_.elements()) e->commit(sol, dc_ctx);
  }
  res.times_.push_back(0.0);
  res.samples_.push_back(x);

  const auto steps = static_cast<std::size_t>(std::llround(t_stop / dt));
  for (std::size_t k = 0; k < steps; ++k) {
    StampContext ctx;
    ctx.kind = AnalysisKind::Transient;
    ctx.method = opt_.method;
    ctx.t = double(k + 1) * dt;
    ctx.dt = dt;
    ctx.first_step = (k == 0);
    if (!solve(x, ctx, dim)) res.converged_ = false;
    const Solution sol(x);
    for (auto& e : ckt_.elements()) e->commit(sol, ctx);
    res.times_.push_back(ctx.t);
    res.samples_.push_back(x);
  }
  return res;
}

} // namespace mss::spice
