#include "spice/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "spice/sparse.hpp"

namespace mss::spice {

namespace {

/// Doolittle LU with partial pivoting over flat row-major storage,
/// templated so the real and complex dense backends share one kernel.
/// matrix.hpp keeps the double-only free functions for direct users.
template <typename T>
[[nodiscard]] bool dense_lu_factor(std::vector<T>& a,
                                   std::vector<std::uint32_t>& pivots,
                                   std::size_t n) {
  pivots.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + k]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    pivots[k] = static_cast<std::uint32_t>(piv);
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[k * n + c], a[piv * n + c]);
      }
    }
    const T inv_pivot = T(1.0) / a[k * n + k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const T f = a[r * n + k] * inv_pivot;
      a[r * n + k] = f;
      if (f == T{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) a[r * n + c] -= f * a[k * n + c];
    }
  }
  return true;
}

template <typename T>
void dense_lu_substitute(const std::vector<T>& lu,
                         const std::vector<std::uint32_t>& pivots,
                         std::vector<T>& b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
    T acc = b[k];
    for (std::size_t c = 0; c < k; ++c) acc -= lu[k * n + c] * b[c];
    b[k] = acc;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    T acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu[ri * n + c] * b[c];
    b[ri] = acc / lu[ri * n + ri];
  }
}

/// Dense backend: flat row-major accumulation with the value-compare
/// factorization cache. Slot handles are the flat row-major offsets, valid
/// for the lifetime of a dimension.
template <typename T>
class DenseSolver final : public LinearSolverT<T> {
 public:
  void begin(std::size_t dim) override {
    if (dim != dim_) {
      dim_ = dim;
      g_.assign(dim * dim, T{});
      cached_.assign(dim * dim, T{});
      factor_valid_ = false;
      this->bump_epoch();
    } else {
      std::fill(g_.begin(), g_.end(), T{});
    }
  }

  void add(std::size_t i, std::size_t j, T v) override {
    g_[i * dim_ + j] += v;
  }

  [[nodiscard]] std::uint32_t slot(std::size_t i, std::size_t j) override {
    return static_cast<std::uint32_t>(i * dim_ + j);
  }

  void add_slot(std::uint32_t slot, T v) override { g_[slot] += v; }

  [[nodiscard]] bool solve(const std::vector<T>& b,
                           std::vector<T>& x) override {
    if (b.size() != dim_) {
      throw std::invalid_argument("DenseSolver: rhs dimension mismatch");
    }
    if (!factor_valid_ || g_ != cached_) {
      // Invalidate first: a failed factorization leaves lu_ clobbered and
      // must not stay paired with the old cached_ values.
      factor_valid_ = false;
      lu_ = g_;
      if (!dense_lu_factor(lu_, pivots_, dim_)) return false;
      cached_ = g_;
      factor_valid_ = true;
      ++factor_count_;
      factor_cols_ += dim_;
    }
    x = b;
    dense_lu_substitute(lu_, pivots_, x, dim_);
    return true;
  }

  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t factor_count() const override {
    return factor_count_;
  }
  [[nodiscard]] std::size_t factor_cols_total() const override {
    return factor_cols_;
  }
  [[nodiscard]] const char* name() const override { return "dense"; }

 private:
  std::size_t dim_ = 0;
  std::vector<T> g_, cached_, lu_;
  std::vector<std::uint32_t> pivots_;
  bool factor_valid_ = false;
  std::size_t factor_count_ = 0;
  std::size_t factor_cols_ = 0;
};

} // namespace

namespace detail {

// Epochs are unique across every solver in the process, so a cached
// (owner, epoch) pair can never alias a new solver allocated at a recycled
// address.
std::uint64_t next_stamp_epoch() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

SolverKind resolve_solver(SolverKind kind, std::size_t dim) {
  if (kind != SolverKind::Auto) return kind;
  return dim >= kSparseAutoThreshold ? SolverKind::Sparse : SolverKind::Dense;
}

std::unique_ptr<LinearSolver> make_solver(const SolverOptions& options,
                                          std::size_t dim) {
  if (resolve_solver(options.kind, dim) == SolverKind::Sparse) {
    auto s = std::make_unique<SparseSolver>();
    s->set_ordering(options.ordering);
    s->set_partial_refactor(options.partial_refactor);
    s->set_supernodal(options.supernodal);
    s->set_markowitz(options.markowitz);
    return s;
  }
  return std::make_unique<DenseSolver<double>>();
}

std::unique_ptr<LinearSolver> make_solver(SolverKind kind, std::size_t dim) {
  SolverOptions o;
  o.kind = kind;
  return make_solver(o, dim);
}

std::unique_ptr<AcLinearSolver> make_ac_solver(const SolverOptions& options,
                                               std::size_t dim) {
  if (resolve_solver(options.kind, dim) == SolverKind::Sparse) {
    auto s = std::make_unique<AcSparseSolver>();
    s->set_ordering(options.ordering);
    s->set_partial_refactor(options.partial_refactor);
    s->set_supernodal(options.supernodal);
    s->set_markowitz(options.markowitz);
    return s;
  }
  return std::make_unique<DenseSolver<std::complex<double>>>();
}

std::unique_ptr<AcLinearSolver> make_ac_solver(SolverKind kind,
                                               std::size_t dim) {
  SolverOptions o;
  o.kind = kind;
  return make_ac_solver(o, dim);
}

} // namespace mss::spice
