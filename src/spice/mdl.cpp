#include "spice/mdl.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mss::spice::mdl {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::invalid_argument("MDL line " + std::to_string(line_no) + ": " +
                              msg);
}

/// key=value split; returns {key, value-or-empty}.
std::pair<std::string, std::string> split_kv(const std::string& tok) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) return {lower(tok), ""};
  return {lower(tok.substr(0, eq)), tok.substr(eq + 1)};
}

} // namespace

double parse_number(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("parse_number: empty");
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_number: bad number '" + token + "'");
  }
  std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return v;
  if (suffix == "meg") return v * 1e6;
  switch (suffix[0]) {
    case 'f': return v * 1e-15;
    case 'p': return v * 1e-12;
    case 'n': return v * 1e-9;
    case 'u': return v * 1e-6;
    case 'm': return v * 1e-3;
    case 'k': return v * 1e3;
    case 'g': return v * 1e9;
    case 't': return v * 1e12;
    default:
      throw std::invalid_argument("parse_number: unknown suffix '" + suffix +
                                  "'");
  }
}

std::vector<double> signal_waveform(const TransientResult& tr,
                                    const std::string& signal) {
  const std::string s = signal;
  if (s.size() >= 4 && (s[0] == 'v' || s[0] == 'V') && s[1] == '(' &&
      s.back() == ')') {
    return tr.voltage(s.substr(2, s.size() - 3));
  }
  if (s.size() >= 4 && (s[0] == 'i' || s[0] == 'I') && s[1] == '(' &&
      s.back() == ')') {
    return tr.current(s.substr(2, s.size() - 3));
  }
  throw std::out_of_range("MDL: bad signal spec '" + signal +
                          "' (want v(node) or i(source))");
}

std::optional<double> cross_time(const std::vector<double>& times,
                                 const std::vector<double>& values,
                                 const CrossSpec& spec) {
  int seen = 0;
  for (std::size_t k = 1; k < times.size(); ++k) {
    const double a = values[k - 1];
    const double b = values[k];
    const bool rise = a < spec.value && b >= spec.value;
    const bool crossed_fall = a > spec.value && b <= spec.value;
    const bool hit =
        spec.edge == Edge::Rise ? rise : crossed_fall;
    if (!hit) continue;
    if (++seen == spec.nth) {
      const double f = (spec.value - a) / (b - a);
      return times[k - 1] + f * (times[k] - times[k - 1]);
    }
  }
  return std::nullopt;
}

Script Script::parse(const std::string& text) {
  Script script;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (lower(toks[0]) != "meas") fail(line_no, "expected 'meas'");
    if (toks.size() < 3) fail(line_no, "too few tokens");

    Measurement m;
    m.name = toks[1];
    const std::string kind = lower(toks[2]);

    auto parse_cross = [&](std::size_t& idx) {
      CrossSpec cs;
      if (idx >= toks.size()) fail(line_no, "missing signal");
      cs.signal = toks[idx++];
      bool have_val = false;
      while (idx < toks.size()) {
        const auto [key, val] = split_kv(toks[idx]);
        if (key == "val") {
          cs.value = parse_number(val);
          have_val = true;
        } else if (key == "rise") {
          cs.edge = Edge::Rise;
          cs.nth = static_cast<int>(parse_number(val));
        } else if (key == "fall") {
          cs.edge = Edge::Fall;
          cs.nth = static_cast<int>(parse_number(val));
        } else {
          break; // belongs to the next clause
        }
        ++idx;
      }
      if (!have_val) fail(line_no, "crossing needs val=");
      return cs;
    };

    if (kind == "delay") {
      std::size_t idx = 3;
      if (idx >= toks.size() || lower(toks[idx]) != "trig") {
        fail(line_no, "delay needs 'trig'");
      }
      ++idx;
      m.kind = Kind::Delay;
      m.trig = parse_cross(idx);
      if (idx >= toks.size() || lower(toks[idx]) != "targ") {
        fail(line_no, "delay needs 'targ'");
      }
      ++idx;
      m.targ = parse_cross(idx);
    } else if (kind == "cross") {
      std::size_t idx = 3;
      m.kind = Kind::Cross;
      m.targ = parse_cross(idx);
      m.signal = m.targ.signal;
    } else {
      static const std::map<std::string, Kind> kinds = {
          {"avg", Kind::Avg},           {"rms", Kind::Rms},
          {"min", Kind::Min},           {"max", Kind::Max},
          {"pp", Kind::PeakToPeak},     {"integral", Kind::Integral},
          {"final", Kind::Final},
      };
      const auto it = kinds.find(kind);
      if (it == kinds.end()) fail(line_no, "unknown kind '" + kind + "'");
      m.kind = it->second;
      if (toks.size() < 4) fail(line_no, "missing signal");
      m.signal = toks[3];
      for (std::size_t idx = 4; idx < toks.size(); ++idx) {
        const auto [key, val] = split_kv(toks[idx]);
        if (key == "from") {
          m.from = parse_number(val);
        } else if (key == "to") {
          m.to = parse_number(val);
        } else {
          fail(line_no, "unexpected token '" + toks[idx] + "'");
        }
      }
    }
    script.add(std::move(m));
  }
  return script;
}

namespace {

/// Window [from, to] clipped to the run; returns index range [i0, i1].
std::pair<std::size_t, std::size_t> window(const std::vector<double>& times,
                                           double from, double to) {
  const double t_end = times.back();
  const double t1 = to < 0.0 ? t_end : std::min(to, t_end);
  std::size_t i0 = 0;
  while (i0 + 1 < times.size() && times[i0] < from) ++i0;
  std::size_t i1 = times.size() - 1;
  while (i1 > 0 && times[i1] > t1) --i1;
  if (i1 < i0) i1 = i0;
  return {i0, i1};
}

double integrate(const std::vector<double>& t, const std::vector<double>& y,
                 std::size_t i0, std::size_t i1) {
  double acc = 0.0;
  for (std::size_t k = i0 + 1; k <= i1; ++k) {
    acc += 0.5 * (y[k] + y[k - 1]) * (t[k] - t[k - 1]);
  }
  return acc;
}

} // namespace

std::vector<MeasureResult> Script::evaluate(const TransientResult& tr) const {
  std::vector<MeasureResult> out;
  out.reserve(measurements_.size());
  const auto& times = tr.times();
  for (const auto& m : measurements_) {
    MeasureResult r;
    r.name = m.name;
    try {
      if (m.kind == Kind::Delay) {
        const auto w_trig = signal_waveform(tr, m.trig.signal);
        const auto w_targ = signal_waveform(tr, m.targ.signal);
        const auto t0 = cross_time(times, w_trig, m.trig);
        const auto t1 = cross_time(times, w_targ, m.targ);
        if (t0 && t1) {
          r.value = *t1 - *t0;
          r.valid = true;
        }
      } else if (m.kind == Kind::Cross) {
        const auto w = signal_waveform(tr, m.targ.signal);
        const auto t = cross_time(times, w, m.targ);
        if (t) {
          r.value = *t;
          r.valid = true;
        }
      } else {
        const auto w = signal_waveform(tr, m.signal);
        const auto [i0, i1] = window(times, m.from, m.to);
        const double span = times[i1] - times[i0];
        switch (m.kind) {
          case Kind::Avg:
            if (span > 0.0) {
              r.value = integrate(times, w, i0, i1) / span;
              r.valid = true;
            }
            break;
          case Kind::Rms:
            if (span > 0.0) {
              std::vector<double> sq(w.size());
              for (std::size_t k = 0; k < w.size(); ++k) sq[k] = w[k] * w[k];
              r.value = std::sqrt(integrate(times, sq, i0, i1) / span);
              r.valid = true;
            }
            break;
          case Kind::Min:
            r.value = *std::min_element(w.begin() + long(i0), w.begin() + long(i1) + 1);
            r.valid = true;
            break;
          case Kind::Max:
            r.value = *std::max_element(w.begin() + long(i0), w.begin() + long(i1) + 1);
            r.valid = true;
            break;
          case Kind::PeakToPeak: {
            const auto [mn, mx] = std::minmax_element(w.begin() + long(i0),
                                                      w.begin() + long(i1) + 1);
            r.value = *mx - *mn;
            r.valid = true;
            break;
          }
          case Kind::Integral:
            r.value = integrate(times, w, i0, i1);
            r.valid = true;
            break;
          case Kind::Final:
            r.value = w.back();
            r.valid = true;
            break;
          case Kind::Delay:
          case Kind::Cross:
            break; // handled above
        }
      }
    } catch (const std::out_of_range&) {
      r.valid = false; // unknown signal -> invalid measurement, not a crash
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::string write_measure_file(const std::vector<MeasureResult>& results) {
  std::ostringstream os;
  os << "# MSS MDL measurement file\n";
  for (const auto& r : results) {
    if (r.valid) {
      os << r.name << " = " << std::scientific << r.value << "\n";
    } else {
      os << r.name << " = FAILED\n";
    }
  }
  return os.str();
}

std::map<std::string, double> parse_measure_file(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::istringstream key_is(line.substr(0, eq));
    std::string key;
    key_is >> key;
    std::istringstream val_is(line.substr(eq + 1));
    std::string val;
    val_is >> val;
    if (key.empty() || val.empty() || val == "FAILED") continue;
    try {
      out[key] = parse_number(val);
    } catch (const std::invalid_argument&) {
      // Skip malformed values; the parser is tolerant by design.
    }
  }
  return out;
}

} // namespace mss::spice::mdl
