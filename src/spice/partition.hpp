// Hierarchical Schur-complement solver for partitioned array netlists.
//
// A megabit 1T-1MTJ array is a mesh of nearly independent column circuits
// coupled only through the shared word-line rows: map each column's
// unknowns to a block and the shared unknowns to the interface, and the
// system becomes block-bordered-diagonal,
//
//   [ A_11            A_1S ] [x_1]   [b_1]
//   [       ...       ...  ] [...] = [...]
//   [            A_BB A_BS ] [x_B]   [b_B]
//   [ A_S1  ...  A_SB A_SS ] [x_S]   [b_S]
//
// Each interior solve A_bb z_b = b_b runs independently through its own
// sparse LU (supernodal panels, partial refactorization — the full
// sparse.hpp machinery at block scale), and the blocks couple through the
// dense interface system
//
//   S x_S = b_S - sum_b A_Sb z_b,   S = A_SS - sum_b A_Sb (A_bb^-1 A_bS),
//
// after which x_b = z_b - W_b x_S with the cached W_b = A_bb^-1 A_bS.
// W_b and the block's S contribution are recomputed only when that
// block's stamped values change (per-block value compare), so a linear
// transient factors each interior once and back-substitutes after that.
//
// Contract of the block map: any map is *valid*. Entries coupling two
// different blocks are legalised by demoting one endpoint to the
// interface when the pattern is classified, so a wrong (or deliberately
// arbitrary, e.g. chunked) map only grows the interface, never produces a
// wrong answer. If a block interior turns out singular under its own
// pivoting — the overall matrix may still be fine — the solver falls back
// permanently to a flat sparse solve of the same assembled values.
//
// Numerics: the partitioned solve agrees with the flat sparse solve to
// rounding (different elimination order), not bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "spice/solver.hpp"
#include "spice/sparse.hpp"

namespace mss::spice {

/// Schur-complement backend over a caller-supplied unknown -> block map.
class SchurSolver final : public LinearSolver {
 public:
  /// `partition[i]` is the block of unknown i (>= 0) or -1 for the
  /// interface. `block_options` configures the per-block sparse solvers
  /// (ordering, supernodal, partial refactorization) and the flat
  /// fallback.
  explicit SchurSolver(std::vector<std::int32_t> partition,
                       SolverOptions block_options = {});

  /// Trivial chunked map: unknown i -> block i / block_size. Exercises
  /// the demotion path on arbitrary matrices (tests).
  [[nodiscard]] static std::vector<std::int32_t> chunk_partition(
      std::size_t dim, std::size_t block_size);

  void begin(std::size_t dim) override;
  void add(std::size_t i, std::size_t j, double v) override;
  [[nodiscard]] std::uint32_t slot(std::size_t i, std::size_t j) override;
  void add_slot(std::uint32_t slot, double v) override { vals_[slot] += v; }
  [[nodiscard]] std::uint32_t find_slot(std::size_t i,
                                        std::size_t j) const override;
  [[nodiscard]] bool solve(const std::vector<double>& b,
                           std::vector<double>& x) override;
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t factor_count() const override;
  [[nodiscard]] std::size_t factor_cols_total() const override;
  [[nodiscard]] const char* name() const override { return "schur"; }
  [[nodiscard]] std::size_t slot_count() const override {
    return vals_.size();
  }
  [[nodiscard]] const std::vector<double>* assembled_values() const override {
    return &vals_;
  }
  [[nodiscard]] std::size_t supernode_count() const override;
  [[nodiscard]] std::size_t supernode_cols() const override;

  /// Blocks with at least one interior unknown (after demotion); 0 before
  /// the first solve.
  [[nodiscard]] std::size_t block_count() const { return live_blocks_; }
  /// Interface unknowns (after demotion); 0 before the first solve.
  [[nodiscard]] std::size_t interface_dim() const { return ns_; }
  /// True once the solver has permanently fallen back to the flat sparse
  /// path (singular interior or a map/dimension mismatch).
  [[nodiscard]] bool flat_fallback() const { return fallback_; }

  /// Concurrency of the per-block phases (restamp/factor/W, forward
  /// solves, back-substitution): 0 = the global pool's width, 1 = serial,
  /// N = N threads. Blocks are computed independently and combined in
  /// block order, so the result is bit-identical for every setting.
  void set_threads(int threads) { threads_ = threads; }

 private:
  /// One interior block: its sparse solver, the slot routing that carries
  /// the globally assembled values into it, the cached W_b = A_bb^-1 A_bS
  /// and the block's dense contribution A_Sb W_b to the interface system.
  struct Block {
    std::unique_ptr<SparseSolver> solver;
    std::size_t nloc = 0;
    std::vector<std::uint32_t> gidx;  ///< local index -> global unknown
    std::vector<std::uint32_t> scols; ///< compressed col -> interface index
    std::vector<std::uint32_t> srows; ///< compressed row -> interface index
    struct Route {
      std::uint32_t a, b, gslot;
    };
    std::vector<Route> interior; ///< (block slot handle, -, global slot)
    std::vector<Route> bs;       ///< (local row, compressed col, global slot)
    std::vector<Route> sb;       ///< (compressed row, local col, global slot)
    std::vector<double> w;       ///< nloc x scols.size(), row-major
    std::vector<double> contrib; ///< srows.size() x scols.size(), row-major
    std::vector<double> cached;  ///< last stamped values (interior|bs|sb)
    std::vector<double> bb, zb, col; ///< solve scratch
    bool ready = false;              ///< w/contrib match cached
  };

  void reset_structure();
  /// Classifies unknowns, builds the per-block routing, allocates the
  /// block solvers. Returns false when the structure cannot be built (the
  /// caller falls back flat).
  [[nodiscard]] bool build_structure();
  [[nodiscard]] bool solve_flat(const std::vector<double>& b,
                                std::vector<double>& x);

  std::vector<std::int32_t> partition_;
  SolverOptions opts_;

  // Assembly storage (the same slot scheme as the sparse backend: handles
  // densely index vals_).
  std::size_t dim_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_;
  std::vector<std::uint32_t> slot_row_, slot_col_;
  std::vector<double> vals_;
  bool pattern_dirty_ = true;

  // Partitioned structure (valid while !pattern_dirty_ && !fallback_).
  std::vector<std::int32_t> cls_; ///< unknown -> block after demotion / -1
  std::vector<std::uint32_t> loc_; ///< unknown -> local / interface index
  std::vector<Block> blocks_;
  std::size_t live_blocks_ = 0;
  std::size_t ns_ = 0;
  std::vector<std::uint32_t> sglob_; ///< interface index -> global unknown
  std::vector<Block::Route> ss_;     ///< (s row, s col, global slot)
  std::vector<double> ss_cached_;
  std::vector<double> s_mat_, s_lu_; ///< dense ns x ns interface system
  std::vector<std::uint32_t> s_piv_;
  std::vector<double> ys_, xs_;
  bool s_valid_ = false;
  std::size_t s_factor_count_ = 0;
  std::size_t s_factor_cols_ = 0;

  // Sticky flat fallback.
  bool fallback_ = false;
  std::unique_ptr<SparseSolver> flat_;

  // Per-block phase concurrency (thread-policy semantics of
  // util::ThreadPool::shared_for) and per-solve flags, block-indexed so
  // parallel chunks never share a cache line's worth of control state.
  int threads_ = 0;
  std::vector<char> blk_dirty_, blk_fail_;
};

} // namespace mss::spice
