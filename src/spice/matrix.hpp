// Dense linear algebra for the MNA system. Circuit matrices in this library
// are small (bit cells, flip-flops, sense amplifiers: tens of unknowns), so
// a dense LU with partial pivoting is simpler and faster than a sparse
// solver at this scale.
#pragma once

#include <cstddef>
#include <vector>

namespace mss::spice {

/// Dense row-major square-capable matrix.
class Matrix {
 public:
  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Number of rows.
  [[nodiscard]] std::size_t rows() const { return rows_; }
  /// Number of columns.
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Element access.
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  /// Element access (const).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Sets all entries to zero (reused across Newton iterations).
  void zero();

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b in place via LU with partial pivoting. A is overwritten.
/// Returns false when the matrix is numerically singular (pivot below
/// 1e-300); the caller treats that as a non-converged solve.
[[nodiscard]] bool lu_solve(Matrix& a, std::vector<double>& b);

} // namespace mss::spice
