// Dense linear algebra primitives: row-major Matrix plus LU factor /
// substitute free functions. The MNA engine reaches these through the
// pluggable solver layer (solver.hpp), which pairs this dense path — still
// the fastest choice for cell-level netlists of tens of unknowns — with
// the sparse backend (sparse.hpp) used at array scale.
#pragma once

#include <cstddef>
#include <vector>

namespace mss::spice {

/// Dense row-major square-capable matrix.
class Matrix {
 public:
  /// Empty 0 x 0 matrix (size it later with `resize`).
  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Number of rows.
  [[nodiscard]] std::size_t rows() const { return rows_; }
  /// Number of columns.
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Element access.
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  /// Element access (const).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Sets all entries to zero (reused across Newton iterations).
  void zero();

  /// Reshapes to rows x cols and zeroes every entry. Reuses the existing
  /// allocation when capacity suffices — the engine's persistent-workspace
  /// contract.
  void resize(std::size_t rows, std::size_t cols);

  /// Flat row-major storage (rows*cols doubles).
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Factors the square matrix in place (Doolittle LU, partial pivoting): L
/// below the unit diagonal, U on and above it; `pivots[k]` records the row
/// swapped into position k. `pivots` is resized by the call but reuses its
/// allocation. Returns false when numerically singular (pivot below 1e-300).
[[nodiscard]] bool lu_factor(Matrix& a, std::vector<std::size_t>& pivots);

/// Solves L U x = P b given a factorization from `lu_factor`; `b` is
/// replaced by the solution. Allocation-free — the factored-once,
/// solved-per-timestep fast path of linear transient circuits.
void lu_substitute(const Matrix& lu, const std::vector<std::size_t>& pivots,
                   std::vector<double>& b);

/// Solves A x = b in place via LU with partial pivoting. A is overwritten.
/// Returns false when the matrix is numerically singular (pivot below
/// 1e-300); the caller treats that as a non-converged solve.
[[nodiscard]] bool lu_solve(Matrix& a, std::vector<double>& b);

} // namespace mss::spice
