#include "spice/partition.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace mss::spice {

namespace {

// Local dense LU with partial pivoting for the interface system (the
// solver.cpp dense backend keeps its own copy in its anonymous namespace).
[[nodiscard]] bool lu_factor(std::vector<double>& a,
                             std::vector<std::uint32_t>& pivots,
                             std::size_t n) {
  pivots.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + k]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    pivots[k] = static_cast<std::uint32_t>(piv);
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[k * n + c], a[piv * n + c]);
      }
    }
    const double inv_pivot = 1.0 / a[k * n + k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a[r * n + k] * inv_pivot;
      a[r * n + k] = f;
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) a[r * n + c] -= f * a[k * n + c];
    }
  }
  return true;
}

void lu_substitute(const std::vector<double>& lu,
                   const std::vector<std::uint32_t>& pivots,
                   std::vector<double>& b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
    double acc = b[k];
    for (std::size_t c = 0; c < k; ++c) acc -= lu[k * n + c] * b[c];
    b[k] = acc;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu[ri * n + c] * b[c];
    b[ri] = acc / lu[ri * n + ri];
  }
}

[[nodiscard]] std::uint64_t slot_key(std::size_t i, std::size_t j) {
  return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
}

} // namespace

SchurSolver::SchurSolver(std::vector<std::int32_t> partition,
                         SolverOptions block_options)
    : partition_(std::move(partition)), opts_(block_options) {}

std::vector<std::int32_t> SchurSolver::chunk_partition(std::size_t dim,
                                                       std::size_t block_size) {
  if (block_size == 0) block_size = 1;
  std::vector<std::int32_t> map(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    map[i] = static_cast<std::int32_t>(i / block_size);
  }
  return map;
}

void SchurSolver::begin(std::size_t dim) {
  if (dim != dim_) {
    dim_ = dim;
    slot_of_.clear();
    slot_row_.clear();
    slot_col_.clear();
    vals_.clear();
    pattern_dirty_ = true;
    reset_structure();
    fallback_ = dim != partition_.size();
    flat_.reset();
    this->bump_epoch();
  }
  std::fill(vals_.begin(), vals_.end(), 0.0);
}

std::uint32_t SchurSolver::slot(std::size_t i, std::size_t j) {
  const auto [it, inserted] = slot_of_.try_emplace(
      slot_key(i, j), static_cast<std::uint32_t>(slot_row_.size()));
  if (inserted) {
    slot_row_.push_back(static_cast<std::uint32_t>(i));
    slot_col_.push_back(static_cast<std::uint32_t>(j));
    vals_.push_back(0.0);
    pattern_dirty_ = true;
  }
  return it->second;
}

void SchurSolver::add(std::size_t i, std::size_t j, double v) {
  vals_[slot(i, j)] += v;
}

std::uint32_t SchurSolver::find_slot(std::size_t i, std::size_t j) const {
  const auto it = slot_of_.find(slot_key(i, j));
  return it == slot_of_.end() ? kNoSlot : it->second;
}

void SchurSolver::reset_structure() {
  cls_.clear();
  loc_.clear();
  blocks_.clear();
  live_blocks_ = 0;
  ns_ = 0;
  sglob_.clear();
  ss_.clear();
  ss_cached_.clear();
  s_mat_.clear();
  s_lu_.clear();
  s_valid_ = false;
}

bool SchurSolver::build_structure() {
  reset_structure();
  const std::size_t n = dim_;
  const std::size_t nnz = slot_row_.size();

  // Classify: start from the caller's map, then legalise cross-block
  // entries by demoting the larger-index endpoint to the interface. A
  // demotion can only turn violating entries into block-interface
  // couplings, never create a new violation, so one pass suffices.
  cls_ = partition_;
  for (std::size_t s = 0; s < nnz; ++s) {
    const std::uint32_t i = slot_row_[s], j = slot_col_[s];
    if (cls_[i] >= 0 && cls_[j] >= 0 && cls_[i] != cls_[j]) {
      cls_[std::max(i, j)] = -1;
    }
  }

  std::int32_t max_block = -1;
  for (std::size_t i = 0; i < n; ++i) max_block = std::max(max_block, cls_[i]);
  blocks_.resize(static_cast<std::size_t>(max_block + 1));

  // Local / interface numbering in ascending global order.
  loc_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (cls_[i] < 0) {
      loc_[i] = static_cast<std::uint32_t>(ns_++);
      sglob_.push_back(static_cast<std::uint32_t>(i));
    } else {
      Block& blk = blocks_[static_cast<std::size_t>(cls_[i])];
      loc_[i] = static_cast<std::uint32_t>(blk.nloc++);
      blk.gidx.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Compressed interface columns/rows each block touches (sorted unique,
  // discovered in slot order).
  std::vector<std::vector<std::uint32_t>> bs_raw(blocks_.size()),
      sb_raw(blocks_.size());
  for (std::size_t s = 0; s < nnz; ++s) {
    const std::uint32_t i = slot_row_[s], j = slot_col_[s];
    const std::int32_t bi = cls_[i], bj = cls_[j];
    if (bi >= 0 && bj < 0) {
      bs_raw[static_cast<std::size_t>(bi)].push_back(loc_[j]);
    } else if (bi < 0 && bj >= 0) {
      sb_raw[static_cast<std::size_t>(bj)].push_back(loc_[i]);
    }
  }
  auto uniq = [](std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    uniq(bs_raw[b]);
    uniq(sb_raw[b]);
    blocks_[b].scols = std::move(bs_raw[b]);
    blocks_[b].srows = std::move(sb_raw[b]);
  }

  // Slot routing. Interior entries resolve their block-solver slot handle
  // once here; the handles stay valid because later begins reuse the
  // block dimension (same epoch).
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> ccol(
      blocks_.size()),
      crow(blocks_.size());
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    Block& blk = blocks_[b];
    for (std::uint32_t c = 0; c < blk.scols.size(); ++c) {
      ccol[b].emplace(blk.scols[c], c);
    }
    for (std::uint32_t r = 0; r < blk.srows.size(); ++r) {
      crow[b].emplace(blk.srows[r], r);
    }
    if (blk.nloc > 0) {
      blk.solver = std::make_unique<SparseSolver>();
      blk.solver->set_ordering(opts_.ordering);
      blk.solver->set_partial_refactor(opts_.partial_refactor);
      blk.solver->set_supernodal(opts_.supernodal);
      blk.solver->begin(blk.nloc);
      ++live_blocks_;
    }
  }
  for (std::size_t s = 0; s < nnz; ++s) {
    const std::uint32_t i = slot_row_[s], j = slot_col_[s];
    const std::int32_t bi = cls_[i], bj = cls_[j];
    const auto gs = static_cast<std::uint32_t>(s);
    if (bi < 0 && bj < 0) {
      ss_.push_back({loc_[i], loc_[j], gs});
    } else if (bi >= 0 && bj >= 0) {
      // Same block (cross-block entries were demoted away above).
      Block& blk = blocks_[static_cast<std::size_t>(bi)];
      blk.interior.push_back({blk.solver->slot(loc_[i], loc_[j]), 0, gs});
    } else if (bi >= 0) {
      Block& blk = blocks_[static_cast<std::size_t>(bi)];
      blk.bs.push_back({loc_[i], ccol[static_cast<std::size_t>(bi)][loc_[j]],
                        gs});
    } else {
      Block& blk = blocks_[static_cast<std::size_t>(bj)];
      blk.sb.push_back({crow[static_cast<std::size_t>(bj)][loc_[i]], loc_[j],
                        gs});
    }
  }

  for (Block& blk : blocks_) {
    blk.cached.clear(); // force the first stamping pass
    blk.ready = false;
    blk.bb.assign(blk.nloc, 0.0);
    blk.zb.assign(blk.nloc, 0.0);
  }
  s_mat_.assign(ns_ * ns_, 0.0);
  ss_cached_.clear();
  s_valid_ = false;
  pattern_dirty_ = false;
  return true;
}

bool SchurSolver::solve_flat(const std::vector<double>& b,
                             std::vector<double>& x) {
  if (!flat_) {
    flat_ = std::make_unique<SparseSolver>();
    flat_->set_ordering(opts_.ordering);
    flat_->set_partial_refactor(opts_.partial_refactor);
    flat_->set_supernodal(opts_.supernodal);
  }
  flat_->begin(dim_);
  for (std::size_t s = 0; s < slot_row_.size(); ++s) {
    flat_->add(slot_row_[s], slot_col_[s], vals_[s]);
  }
  return flat_->solve(b, x);
}

bool SchurSolver::solve(const std::vector<double>& b, std::vector<double>& x) {
  if (fallback_) return solve_flat(b, x);
  if (pattern_dirty_ && !build_structure()) {
    fallback_ = true;
    return solve_flat(b, x);
  }

  // Restamp and refresh W_b / the S contribution of every block whose
  // values moved; untouched blocks keep their factorization and caches.
  // Blocks are mutually independent (disjoint state, vals_ read-only
  // here), so the phase fans out across the pool; per-block results land
  // in block-indexed slots, keeping the outcome thread-count invariant.
  const std::size_t nblk = blocks_.size();
  blk_dirty_.assign(nblk, 0);
  blk_fail_.assign(nblk, 0);
  util::ThreadPool::run_with(
      threads_ < 0 ? 1 : std::size_t(threads_), nblk, 1,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t bi = lo; bi < hi; ++bi) {
          Block& blk = blocks_[bi];
          if (blk.nloc == 0) continue;
          const std::size_t nv =
              blk.interior.size() + blk.bs.size() + blk.sb.size();
          blk.col.resize(std::max(blk.col.size(), nv)); // the gather buffer
          double* cur = blk.col.data();
          std::size_t p = 0;
          for (const auto& r : blk.interior) cur[p++] = vals_[r.gslot];
          for (const auto& r : blk.bs) cur[p++] = vals_[r.gslot];
          for (const auto& r : blk.sb) cur[p++] = vals_[r.gslot];
          const bool dirty =
              !blk.ready || blk.cached.size() != nv ||
              !std::equal(cur, cur + nv, blk.cached.begin());
          if (!dirty) continue;

          blk.cached.assign(cur, cur + nv);
          blk.solver->begin(blk.nloc);
          for (const auto& r : blk.interior) {
            blk.solver->add_slot(r.a, vals_[r.gslot]);
          }
          // W_b = A_bb^-1 A_bS, one sparse solve per touched interface
          // column.
          const std::size_t nc = blk.scols.size();
          blk.w.assign(blk.nloc * nc, 0.0);
          for (std::size_t c = 0; c < nc; ++c) {
            std::fill(blk.bb.begin(), blk.bb.end(), 0.0);
            for (const auto& r : blk.bs) {
              if (r.b == c) blk.bb[r.a] += vals_[r.gslot];
            }
            if (!blk.solver->solve(blk.bb, blk.zb)) {
              blk_fail_[bi] = 1; // singular interior
              break;
            }
            for (std::size_t l = 0; l < blk.nloc; ++l) {
              blk.w[l * nc + c] = blk.zb[l];
            }
          }
          if (blk_fail_[bi] != 0) continue;
          // Contribution A_Sb W_b on the block's touched interface
          // rows/cols.
          blk.contrib.assign(blk.srows.size() * nc, 0.0);
          for (const auto& r : blk.sb) {
            const double a = vals_[r.gslot];
            if (a == 0.0) continue;
            const double* wrow = blk.w.data() + r.b * nc;
            double* crow_out = blk.contrib.data() + r.a * nc;
            for (std::size_t c = 0; c < nc; ++c) crow_out[c] += a * wrow[c];
          }
          blk.ready = true;
          blk_dirty_[bi] = 1;
        }
      });
  for (std::size_t bi = 0; bi < nblk; ++bi) {
    if (blk_fail_[bi] != 0) {
      fallback_ = true; // the flat pivoting may cope with the singularity
      return solve_flat(b, x);
    }
  }
  bool s_dirty = !s_valid_;
  for (std::size_t bi = 0; bi < nblk; ++bi) s_dirty |= blk_dirty_[bi] != 0;

  // Interface system S = A_SS - sum_b A_Sb W_b (skipped entirely while no
  // block or A_SS value moved).
  if (ns_ > 0) {
    std::vector<double> ss_cur(ss_.size());
    for (std::size_t k = 0; k < ss_.size(); ++k) {
      ss_cur[k] = vals_[ss_[k].gslot];
    }
    if (ss_cur != ss_cached_) {
      ss_cached_ = std::move(ss_cur);
      s_dirty = true;
    }
    if (s_dirty) {
      std::fill(s_mat_.begin(), s_mat_.end(), 0.0);
      for (std::size_t k = 0; k < ss_.size(); ++k) {
        s_mat_[ss_[k].a * ns_ + ss_[k].b] += ss_cached_[k];
      }
      for (const Block& blk : blocks_) {
        const std::size_t nc = blk.scols.size();
        for (std::size_t r = 0; r < blk.srows.size(); ++r) {
          double* srow = s_mat_.data() + blk.srows[r] * ns_;
          const double* crow_in = blk.contrib.data() + r * nc;
          for (std::size_t c = 0; c < nc; ++c) {
            srow[blk.scols[c]] -= crow_in[c];
          }
        }
      }
      s_lu_ = s_mat_;
      if (!lu_factor(s_lu_, s_piv_, ns_)) {
        s_valid_ = false;
        fallback_ = true;
        return solve_flat(b, x);
      }
      ++s_factor_count_;
      s_factor_cols_ += ns_;
    }
  }
  s_valid_ = true;

  // Forward: interior solves (block-parallel, disjoint scratch), then the
  // interface right-hand side.
  util::ThreadPool::run_with(
      threads_ < 0 ? 1 : std::size_t(threads_), nblk, 1,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t bi = lo; bi < hi; ++bi) {
          Block& blk = blocks_[bi];
          if (blk.nloc == 0) continue;
          for (std::size_t l = 0; l < blk.nloc; ++l) {
            blk.bb[l] = b[blk.gidx[l]];
          }
          if (!blk.solver->solve(blk.bb, blk.zb)) blk_fail_[bi] = 1;
        }
      });
  for (std::size_t bi = 0; bi < nblk; ++bi) {
    if (blk_fail_[bi] != 0) {
      fallback_ = true;
      return solve_flat(b, x);
    }
  }
  ys_.assign(ns_, 0.0);
  for (std::size_t si = 0; si < ns_; ++si) ys_[si] = b[sglob_[si]];
  for (const Block& blk : blocks_) {
    for (const auto& r : blk.sb) {
      ys_[blk.srows[r.a]] -= vals_[r.gslot] * blk.zb[r.b];
    }
  }
  xs_ = ys_;
  if (ns_ > 0) lu_substitute(s_lu_, s_piv_, xs_, ns_);

  // Back-substitute the interface solution into the blocks (disjoint
  // x ranges per block).
  x.assign(dim_, 0.0);
  for (std::size_t si = 0; si < ns_; ++si) x[sglob_[si]] = xs_[si];
  util::ThreadPool::run_with(
      threads_ < 0 ? 1 : std::size_t(threads_), nblk, 1,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t bi = lo; bi < hi; ++bi) {
          const Block& blk = blocks_[bi];
          const std::size_t nc = blk.scols.size();
          for (std::size_t l = 0; l < blk.nloc; ++l) {
            double acc = blk.zb[l];
            const double* wrow = blk.w.data() + l * nc;
            for (std::size_t c = 0; c < nc; ++c) {
              acc -= wrow[c] * xs_[blk.scols[c]];
            }
            x[blk.gidx[l]] = acc;
          }
        }
      });
  return true;
}

std::size_t SchurSolver::factor_count() const {
  std::size_t total = s_factor_count_ + (flat_ ? flat_->factor_count() : 0);
  for (const Block& blk : blocks_) {
    if (blk.solver) total += blk.solver->factor_count();
  }
  return total;
}

std::size_t SchurSolver::factor_cols_total() const {
  std::size_t total = s_factor_cols_ + (flat_ ? flat_->factor_cols_total() : 0);
  for (const Block& blk : blocks_) {
    if (blk.solver) total += blk.solver->factor_cols_total();
  }
  return total;
}

std::size_t SchurSolver::supernode_count() const {
  std::size_t total = flat_ ? flat_->supernode_count() : 0;
  for (const Block& blk : blocks_) {
    if (blk.solver) total += blk.solver->supernode_count();
  }
  return total;
}

std::size_t SchurSolver::supernode_cols() const {
  std::size_t total = flat_ ? flat_->supernode_cols() : 0;
  for (const Block& blk : blocks_) {
    if (blk.solver) total += blk.solver->supernode_cols();
  }
  return total;
}

} // namespace mss::spice
