#include "spice/controlled.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mss::spice {

Vcvs::Vcvs(std::string name, int p, int n, int cp, int cn, double gain)
    : Element(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::stamp(MnaSystem& st, const Solution&, const StampContext&) const {
  const int br = static_cast<int>(branch_);
  // KCL rows, then the branch row: v(p) - v(n) - gain*(v(cp) - v(cn)) = 0.
  st.add_all(slots_,
             {{{p_, br}, {n_, br}, {br, p_}, {br, n_}, {br, cp_}, {br, cn_}}},
             {1.0, -1.0, 1.0, -1.0, -gain_, gain_});
}

Vccs::Vccs(std::string name, int p, int n, int cp, int cn, double gm)
    : Element(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::stamp(MnaSystem& st, const Solution&, const StampContext&) const {
  // Current gm*(v(cp)-v(cn)) flows out of p into n.
  st.add_all(slots_, {{{p_, cp_}, {p_, cn_}, {n_, cp_}, {n_, cn_}}},
             {gm_, -gm_, -gm_, gm_});
}

Diode::Diode(std::string name, int anode, int cathode, double i_s,
             double n_ideality)
    : Element(std::move(name)), a_(anode), c_(cathode), i_s_(i_s),
      vt_n_(n_ideality * 0.025852) {
  if (i_s_ <= 0.0 || n_ideality <= 0.0) {
    throw std::invalid_argument("Diode: bad model parameters");
  }
}

double Diode::current(double v) const {
  // Clamp the exponent so evaluation never overflows; the Newton loop's
  // damping brings the iterate back into range.
  const double x = std::min(v / vt_n_, 80.0);
  return i_s_ * std::expm1(x);
}

void Diode::stamp(MnaSystem& st, const Solution& x,
                  const StampContext&) const {
  const double v = x.v(a_) - x.v(c_);
  const double vl = std::min(v / vt_n_, 80.0);
  const double g = std::max(1e-12, i_s_ * std::exp(vl) / vt_n_);
  const double i = current(v);
  const double ieq = i - g * v;
  st.add_all(slots_, {{{a_, a_}, {c_, c_}, {a_, c_}, {c_, a_}}},
             {g, g, -g, -g});
  st.add_rhs(a_, -ieq);
  st.add_rhs(c_, ieq);
}

Inductor::Inductor(std::string name, int a, int b, double henries,
                   double i_initial)
    : Element(std::move(name)), a_(a), b_(b), l_(henries), i0_(i_initial),
      i_prev_(i_initial) {
  if (l_ <= 0.0) throw std::invalid_argument("Inductor: non-positive value");
}

void Inductor::reset() {
  i_prev_ = i0_;
  v_prev_ = 0.0;
}

void Inductor::save_state() {
  saved_i_prev_ = i_prev_;
  saved_v_prev_ = v_prev_;
}

void Inductor::restore_state() {
  i_prev_ = saved_i_prev_;
  v_prev_ = saved_v_prev_;
}

void Inductor::stamp(MnaSystem& st, const Solution&,
                     const StampContext& ctx) const {
  const int br = static_cast<int>(branch_);
  const bool dc = ctx.kind == AnalysisKind::Dc || ctx.dt <= 0.0;
  // KCL: branch current flows a -> b. Branch row: DC short circuit
  // v(a) - v(b) = 0, or the companion v(a) - v(b) - req * i = rhs.
  // BE: v_n = (L/dt)(i_n - i_{n-1});
  // trapezoidal: v_n = (2L/dt)(i_n - i_{n-1}) - v_{n-1}.
  // The (br, br) position is stamped (with 0) in DC too so the sparse
  // pattern stays stable between the operating point and the transient.
  const bool trap = ctx.method == Integrator::Trapezoidal && !ctx.first_step;
  const double req = dc ? 0.0 : (trap ? 2.0 : 1.0) * l_ / ctx.dt;
  st.add_all(slots_, {{{a_, br}, {b_, br}, {br, a_}, {br, b_}, {br, br}}},
             {1.0, -1.0, 1.0, -1.0, -req});
  if (!dc) {
    st.add_rhs(br, trap ? (-req * i_prev_ - v_prev_) : (-req * i_prev_));
  }
}

void Inductor::commit(const Solution& x, const StampContext& ctx) {
  i_prev_ = x.raw(branch_);
  if (ctx.kind == AnalysisKind::Transient && ctx.dt > 0.0) {
    v_prev_ = x.v(a_) - x.v(b_);
  } else {
    v_prev_ = 0.0;
  }
}

void Vcvs::stamp_ac(AcSystem& st, const Solution&, double) const {
  const int br = static_cast<int>(branch_);
  using C = std::complex<double>;
  st.add_all(slots_,
             {{{p_, br}, {n_, br}, {br, p_}, {br, n_}, {br, cp_}, {br, cn_}}},
             {C(1.0), C(-1.0), C(1.0), C(-1.0), C(-gain_), C(gain_)});
}

void Vccs::stamp_ac(AcSystem& st, const Solution&, double) const {
  using C = std::complex<double>;
  st.add_all(slots_, {{{p_, cp_}, {p_, cn_}, {n_, cp_}, {n_, cn_}}},
             {C(gm_), C(-gm_), C(-gm_), C(gm_)});
}

void Diode::stamp_ac(AcSystem& st, const Solution& op, double) const {
  const double v = op.v(a_) - op.v(c_);
  const double vl = std::min(v / vt_n_, 80.0);
  const std::complex<double> g(
      std::max(1e-12, i_s_ * std::exp(vl) / vt_n_), 0.0);
  st.add_all(slots_, {{{a_, a_}, {c_, c_}, {a_, c_}, {c_, a_}}},
             {g, g, -g, -g});
}

void Inductor::stamp_ac(AcSystem& st, const Solution&, double omega) const {
  const int br = static_cast<int>(branch_);
  using C = std::complex<double>;
  // Branch row: v(a) - v(b) - j*omega*L * i = 0.
  st.add_all(slots_, {{{a_, br}, {b_, br}, {br, a_}, {br, b_}, {br, br}}},
             {C(1.0), C(-1.0), C(1.0), C(-1.0), C(0.0, -omega * l_)});
}

} // namespace mss::spice
