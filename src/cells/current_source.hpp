// MSS-based programmable current source — the analog IP the paper names
// for the sensor interface ("feedback using an MSS-based programmable
// current source, has also been proposed and will be integrated in the
// SoC").
//
// Topology: a reference branch VDD -> (chain of n MTJs in series) ->
// diode-connected NMOS -> GND sets a reference current determined by the
// programmed MTJ states; an NMOS current mirror copies it to the output.
// Programming k of the n MTJs antiparallel yields n+1 monotonically
// decreasing current levels — a digitally trimmable bias source.
#pragma once

#include <vector>

#include "cells/characterization.hpp"
#include "core/pdk.hpp"

namespace mss::cells {

/// Sizing options.
struct CurrentSourceOptions {
  int n_mtj = 3;                  ///< MTJs in the reference chain
  double mirror_width_factor = 10.0; ///< mirror NMOS width in W_min units
  double r_load = 5e3;            ///< output load resistance [Ohm]
  double sim_dt = 10e-12;
};

/// Characterisation of the programmable levels.
struct CurrentSourceResult {
  /// Output current for k = 0..n antiparallel devices in the chain [A].
  std::vector<double> levels;
  /// Relative step granularity: (I_max - I_min) / I_max.
  double tuning_range = 0.0;
  /// Static power at the mid level [W].
  double static_power = 0.0;
};

/// The programmable-current-source characterisation driver.
class CurrentSource {
 public:
  CurrentSource(core::Pdk pdk, CurrentSourceOptions options = {});

  /// Sweeps the programmed state and reports the output levels.
  [[nodiscard]] CurrentSourceResult characterize() const;

 private:
  core::Pdk pdk_;
  CurrentSourceOptions opt_;
};

} // namespace mss::cells
