#include "cells/bitcell.hpp"

#include <cmath>
#include <memory>

#include "spice/elements.hpp"
#include "spice/mtj_element.hpp"

namespace mss::cells {

using core::MtjState;
using core::WriteDirection;
using spice::Capacitor;
using spice::Circuit;
using spice::DcWave;
using spice::Engine;
using spice::MtjDevice;
using spice::Mosfet;
using spice::PulseWave;
using spice::VoltageSource;

Bitcell::Bitcell(core::Pdk pdk, BitcellOptions options)
    : pdk_(std::move(pdk)), opt_(options) {}

BitcellWriteResult Bitcell::characterize_write(WriteDirection dir,
                                               double pulse_width) const {
  const auto cards = device_cards(pdk_);
  const double vdd = cards.vdd;
  const double t_start = 0.5e-9;
  const double t_stop = t_start + pulse_width + 1.0e-9;

  Circuit ckt;
  const int bl = ckt.node("bl");
  const int sl = ckt.node("sl");
  const int wl = ckt.node("wl");
  const int n1 = ckt.node("n1");

  // Drive polarity per direction: ToParallel pushes current BL -> SL.
  const bool to_p = dir == WriteDirection::ToParallel;
  ckt.add(std::make_unique<VoltageSource>(
      "vbl", bl, spice::kGround,
      std::make_unique<PulseWave>(0.0, to_p ? vdd : 0.0, t_start, 50e-12,
                                  50e-12, pulse_width)));
  ckt.add(std::make_unique<VoltageSource>(
      "vsl", sl, spice::kGround,
      std::make_unique<PulseWave>(0.0, to_p ? 0.0 : vdd, t_start, 50e-12,
                                  50e-12, pulse_width)));
  ckt.add(std::make_unique<VoltageSource>(
      "vwl", wl, spice::kGround,
      std::make_unique<PulseWave>(0.0, vdd, t_start - 0.2e-9, 50e-12, 50e-12,
                                  pulse_width + 0.4e-9)));

  // MTJ: free terminal on BL, reference on n1; initial state is the one the
  // write must flip.
  auto* mtj = ckt.add(std::make_unique<MtjDevice>(
      "xmtj", bl, n1, pdk_.mtj,
      to_p ? MtjState::Antiparallel : MtjState::Parallel));

  ckt.add(std::make_unique<Mosfet>("macc", n1, wl, sl, cards.nmos,
                                   opt_.access_width_factor * cards.w_min,
                                   cards.l_min));
  ckt.add(std::make_unique<Capacitor>("cbl", bl, spice::kGround,
                                      opt_.c_bitline));
  ckt.add(std::make_unique<Capacitor>("csl", sl, spice::kGround,
                                      opt_.c_sourceline));

  Engine engine(ckt);
  const auto tr = engine.transient(t_stop, opt_.sim_dt);

  BitcellWriteResult out;
  out.switched = mtj->state() == (to_p ? MtjState::Parallel
                                       : MtjState::Antiparallel);
  if (!mtj->flip_times().empty()) {
    out.t_switch = mtj->flip_times().front() - t_start;
  }
  // Energy from whichever source drives the pulse.
  out.energy = source_energy(tr, to_p ? "vbl" : "vsl", to_p ? "bl" : "sl");

  for (const auto& [t, i] : mtj->current_trace()) {
    out.i_peak = std::max(out.i_peak, std::abs(i));
    if (mtj->flip_times().empty() || t < mtj->flip_times().front()) {
      out.i_settled = std::abs(i);
    }
  }
  return out;
}

BitcellReadResult Bitcell::characterize_read(double t_read) const {
  const auto cards = device_cards(pdk_);
  const double vdd = cards.vdd;
  BitcellReadResult out;

  for (const MtjState st : {MtjState::Parallel, MtjState::Antiparallel}) {
    Circuit ckt;
    const int bl = ckt.node("bl");
    const int wl = ckt.node("wl");
    const int n1 = ckt.node("n1");

    ckt.add(std::make_unique<VoltageSource>(
        "vbl", bl, spice::kGround, std::make_unique<DcWave>(pdk_.v_read)));
    ckt.add(std::make_unique<VoltageSource>(
        "vwl", wl, spice::kGround,
        std::make_unique<PulseWave>(0.0, vdd, 0.2e-9, 50e-12, 50e-12,
                                    t_read)));
    ckt.add(std::make_unique<MtjDevice>("xmtj", bl, n1, pdk_.mtj, st));
    ckt.add(std::make_unique<Mosfet>("macc", n1, wl, spice::kGround,
                                     cards.nmos,
                                     opt_.access_width_factor * cards.w_min,
                                     cards.l_min));
    ckt.add(std::make_unique<Capacitor>("cbl", bl, spice::kGround,
                                        opt_.c_bitline));

    Engine engine(ckt);
    const auto tr = engine.transient(0.2e-9 + t_read + 0.3e-9, opt_.sim_dt);

    // MDL pipeline: settled bitline-source current during the pulse.
    const double t_lo = 0.2e-9 + 0.6 * t_read;
    const double t_hi = 0.2e-9 + 0.95 * t_read;
    const std::string mdl = "meas iread avg i(vbl) from=" + mdl_num(t_lo) +
                            " to=" + mdl_num(t_hi) + "\n";
    const auto meas = run_mdl_pipeline(tr, mdl);
    const double i_cell = std::abs(meas.at("iread"));
    if (st == MtjState::Parallel) {
      out.i_cell_p = i_cell;
      out.energy_read = source_energy(tr, "vbl", "bl");
    } else {
      out.i_cell_ap = i_cell;
    }
  }
  out.delta_i = out.i_cell_p - out.i_cell_ap;
  return out;
}

} // namespace mss::cells
