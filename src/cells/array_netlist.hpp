// Array-level netlist builder: a rows x cols block of 1T-1MTJ bit cells
// with distributed wordline/bitline parasitics, for SPICE characterisation
// at array scale through the sparse MNA backend.
//
// Modelling choices (the standard characterisation reduction):
//  * the selected wordline carries one full device cell (access NMOS + MTJ)
//    per column — the half-selected row is what loads the write/read path;
//  * unselected rows contribute their drain-junction capacitance to the
//    bitline segments and their gate capacitance to nothing (their
//    wordlines are held at ground and not simulated);
//  * every bitline and the selected wordline are distributed RC lines with
//    a configurable segment count (`segments` of 0 selects one segment
//    per cell, the full-fidelity grid);
//  * unselected columns are tied to their inhibit level through the driver
//    resistance, the selected column is driven by ideal pulse sources.
//
// A 64 x 64 build with segments = 0 assembles ~4.3k unknowns — far past
// the dense backend's practical range and the reason the solver layer is
// pluggable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/compact_model.hpp"
#include "core/pdk.hpp"
#include "spice/circuit.hpp"
#include "spice/mtj_element.hpp"

namespace mss::cells {

/// Schur-partitioning policy of the array characterisation runs.
enum class SchurMode {
  Auto, ///< partition when the assembled dimension reaches kSchurAutoDim
  Off,  ///< always flat sparse
  On,   ///< always partitioned
};

/// Dimension at which SchurMode::Auto switches the array characterisation
/// to the partitioned (per-column Schur) solver. During MTJ switching
/// windows every column's access-device stamps change at once, so the
/// partitioned path refactors more columns than the flat solver's
/// first-dirty-pivot partial refactorization — the crossover sits past
/// the segmented builds (a 256 x 16 8-segment write assembles ~2.8k
/// unknowns and still solves faster flat) and engages for full-fidelity
/// grids (64 x 64 with segments = 0 is ~4.4k unknowns).
inline constexpr std::size_t kSchurAutoDim = 4000;

/// Geometry/fidelity options of the array build.
struct ArrayNetlistOptions {
  std::size_t rows = 64;        ///< wordlines
  std::size_t cols = 64;        ///< bitlines
  std::size_t target_col = 0;   ///< column of the accessed cell
  /// Row of the selected wordline; positions the cell tap along the
  /// bitline RC. Defaults to the far end (worst case) when >= rows.
  std::size_t target_row = std::size_t(-1);
  /// Bitline/wordline RC segments per line; 0 = one segment per cell (full
  /// fidelity). Coarser counts lump the same total R/C into fewer nodes.
  std::size_t segments = 8;
  double access_width_factor = 8.0; ///< access NMOS width in W_min units
  double r_driver_off = 200.0;      ///< unselected-line tie resistance [Ohm]
  /// Cell pitch in feature sizes (matches nvsim::ArrayModel's footprint).
  double cell_width_f = 6.0;
  double cell_height_f = 7.0;
  /// Per-cell line loading (drain junction on the bitline, gate on the
  /// wordline), matching the nvsim array geometry derivation.
  double c_cell_drain = 0.04e-15;   ///< [F]
  double c_cell_gate = 0.05e-15;    ///< [F]
  core::MtjState unselected_state = core::MtjState::Antiparallel;
  double sim_dt = 20e-12;           ///< transient step [s]
  /// Adaptive transient stepping: LTE-controlled step doubling/halving
  /// seeded at `sim_dt`, landing exactly on the drive-pulse corners. Off
  /// by default (fixed-step reference behaviour).
  bool adaptive_step = false;
  double adaptive_ltol = 1e-3;      ///< relative LTE tolerance per step
  /// Sharded parallel element stamping (EngineOptions::assembly_threads):
  /// 1 = serial stamping, 0 = the global pool's width, N = N threads.
  /// Bit-identical to serial either way (the per-column stamp groups the
  /// build assigns partition the matrix slots).
  int assembly_threads = 1;
  /// Hierarchical Schur partitioning of the solve (column-group blocks
  /// coupled through the wordline interface).
  SchurMode partitioning = SchurMode::Auto;
  /// Columns per Schur block. Column circuits only couple through the
  /// wordline, so any grouping is valid; wider blocks amortize the
  /// per-block solve overhead and let the in-block partial
  /// refactorization skip settled columns, narrower ones confine a dirty
  /// stamp to less interior. ~16 balances the two at array scale.
  std::size_t schur_block_cols = 16;
};

/// A built array netlist: the circuit plus handles into it. Movable; the
/// element pointers stay valid (elements are heap-owned by the circuit).
struct ArrayNetlist {
  spice::Circuit circuit;
  spice::MtjDevice* target_mtj = nullptr;          ///< the accessed cell
  std::vector<spice::MtjDevice*> row_mtjs;         ///< selected row, by column
  std::string v_bitline;   ///< name of the selected-column BL source
  std::string v_sourceline;///< name of the selected-column SL source
  std::string v_wordline;  ///< name of the wordline driver source
  std::string bl_drive_node; ///< BL node the selected-column source drives
  std::string sl_drive_node; ///< SL node the selected-column source drives
  std::string bl_cell_node;///< BL node name at the target cell's tap
  std::size_t dim = 0;     ///< unknown count of the assembled system
  /// Unknown -> block map for the Schur solver: column circuits (bitline
  /// segments, source line, internal node, the selected column's source
  /// branches) map to their column group (column / schur_block_cols);
  /// wordline nodes and the vwl branch are the interface (-1).
  std::vector<std::int32_t> partition;
};

/// Builds the write netlist: the target column driven BL/SL per direction
/// (ToParallel pushes current BL -> SL), unselected columns inhibited at
/// ground, wordline pulsed for `pulse_width` after a 0.5 ns lead-in.
/// The target MTJ starts in the state the write must flip.
[[nodiscard]] ArrayNetlist build_array_write_netlist(
    const core::Pdk& pdk, const ArrayNetlistOptions& opt,
    core::WriteDirection dir, double pulse_width);

/// Builds the read netlist: the target column's bitline biased at the PDK
/// read voltage, wordline pulsed for `t_read`, target MTJ in `state`.
[[nodiscard]] ArrayNetlist build_array_read_netlist(
    const core::Pdk& pdk, const ArrayNetlistOptions& opt,
    core::MtjState state, double t_read);

} // namespace mss::cells
