// 1T-1MTJ bit cell, characterised through the SPICE engine exactly along
// the paper's pipeline: template netlist -> transient -> MDL measurement
// file -> parse -> cell parameters.
//
// Topology:
//
//   BL ──[MTJ free|ref]── n1 ──[NMOS access]── SL
//                                  │gate
//                                  WL
//
// Writing P:  BL = Vdd, SL = 0, WL = Vdd (current BL -> SL).
// Writing AP: BL = 0, SL = Vdd, WL = Vdd (current SL -> BL; suffers the
//             source-degenerated access device, the classic asymmetry).
// Reading:    small BL bias, WL = Vdd, sense the bitline current.
#pragma once

#include "cells/characterization.hpp"
#include "core/pdk.hpp"

namespace mss::cells {

/// Geometry/loading options of the cell and its environment.
struct BitcellOptions {
  double access_width_factor = 8.0; ///< access NMOS width in units of W_min
  double c_bitline = 50e-15;        ///< bitline capacitance seen by the cell [F]
  double c_sourceline = 50e-15;     ///< source-line capacitance [F]
  double sim_dt = 10e-12;           ///< transient step [s]
};

/// Result of one write characterisation run.
struct BitcellWriteResult {
  bool switched = false;     ///< final MTJ state matches the write direction
  double t_switch = 0.0;     ///< WL-rise to state-flip delay [s]
  double energy = 0.0;       ///< energy delivered by the driving source [J]
  double i_peak = 0.0;       ///< peak stack current [A]
  double i_settled = 0.0;    ///< stack current just before the flip [A]
};

/// Result of a read characterisation run.
struct BitcellReadResult {
  double i_cell_p = 0.0;   ///< settled read current, parallel state [A]
  double i_cell_ap = 0.0;  ///< settled read current, antiparallel state [A]
  double delta_i = 0.0;    ///< sense margin current [A]
  double energy_read = 0.0; ///< read energy per access (parallel state) [J]
};

/// The bit cell characterisation driver.
class Bitcell {
 public:
  Bitcell(core::Pdk pdk, BitcellOptions options = {});

  /// Characterises a write in the given direction with a WL/driver pulse of
  /// `pulse_width` seconds.
  [[nodiscard]] BitcellWriteResult characterize_write(
      core::WriteDirection dir, double pulse_width) const;

  /// Characterises the read operation at the PDK read bias.
  [[nodiscard]] BitcellReadResult characterize_read(double t_read) const;

  /// The PDK in use.
  [[nodiscard]] const core::Pdk& pdk() const { return pdk_; }
  /// Options in use.
  [[nodiscard]] const BitcellOptions& options() const { return opt_; }

 private:
  core::Pdk pdk_;
  BitcellOptions opt_;
};

} // namespace mss::cells
