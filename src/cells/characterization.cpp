#include "cells/characterization.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mss::cells {

std::string mdl_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9e", v);
  return buf;
}

DeviceCards device_cards(const core::Pdk& pdk) {
  DeviceCards cards;
  const bool n45 = pdk.node == core::TechNode::N45;
  cards.nmos = spice::MosModel::nmos(n45 ? 0.35 : 0.40, n45 ? 500e-6 : 450e-6);
  cards.pmos = spice::MosModel::pmos(n45 ? 0.35 : 0.40, n45 ? 250e-6 : 220e-6);
  cards.nmos.c_gate_per_m = pdk.cmos.c_gate_per_m;
  cards.pmos.c_gate_per_m = pdk.cmos.c_gate_per_m;
  cards.w_min = 2.0 * pdk.cmos.feature_m;
  cards.l_min = pdk.cmos.feature_m;
  cards.vdd = pdk.cmos.vdd;
  return cards;
}

double source_energy(const spice::TransientResult& tr,
                     const std::string& vsource_name,
                     const std::string& plus_node,
                     const std::string& minus_node) {
  // SPICE convention: the stored branch current flows from the + terminal
  // *through the source* to the - terminal, so a delivering source carries
  // negative branch current and the power it delivers is p = -v * i.
  const auto& times = tr.times();
  double e = 0.0;
  for (std::size_t k = 1; k < times.size(); ++k) {
    const double dt = times[k] - times[k - 1];
    const double p0 = -(tr.v(plus_node, k - 1) - tr.v(minus_node, k - 1)) *
                      tr.i(vsource_name, k - 1);
    const double p1 = -(tr.v(plus_node, k) - tr.v(minus_node, k)) *
                      tr.i(vsource_name, k);
    e += 0.5 * (p0 + p1) * dt;
  }
  return e;
}

std::map<std::string, double> run_mdl_pipeline(
    const spice::TransientResult& tr, const std::string& mdl_script_text) {
  const auto script = spice::mdl::Script::parse(mdl_script_text);
  const auto results = script.evaluate(tr);
  const std::string file = spice::mdl::write_measure_file(results);
  return spice::mdl::parse_measure_file(file);
}

namespace {

/// Fixed or LTE-adaptive transient per the array options — the one place
/// both characterisation drivers pick their stepping mode.
[[nodiscard]] spice::TransientResult run_array_transient(
    spice::Engine& engine, const ArrayNetlistOptions& opt, double t_stop) {
  if (!opt.adaptive_step) return engine.transient(t_stop, opt.sim_dt);
  spice::AdaptiveOptions aopt;
  aopt.ltol_rel = opt.adaptive_ltol;
  return engine.transient_adaptive(t_stop, opt.sim_dt, aopt);
}

/// Engine options of an array run: solver choice, sharded assembly, and
/// the per-column Schur partition (On, or Auto past kSchurAutoDim).
[[nodiscard]] spice::EngineOptions array_engine_options(
    const ArrayNetlist& net, const ArrayNetlistOptions& opt,
    spice::SolverKind solver) {
  spice::EngineOptions eopt;
  eopt.solver = solver;
  eopt.assembly_threads = opt.assembly_threads;
  const bool partitioned =
      opt.partitioning == SchurMode::On ||
      (opt.partitioning == SchurMode::Auto && net.dim >= kSchurAutoDim);
  if (partitioned) {
    eopt.partitioned = true;
    eopt.partition = net.partition;
  }
  return eopt;
}

} // namespace

ArrayWriteResult characterize_array_write(const core::Pdk& pdk,
                                          const ArrayNetlistOptions& opt,
                                          core::WriteDirection dir,
                                          double pulse_width,
                                          spice::SolverKind solver) {
  const double t_start = 0.5e-9;
  const double t_stop = t_start + pulse_width + 1.0e-9;
  auto net = build_array_write_netlist(pdk, opt, dir, pulse_width);

  spice::Engine engine(net.circuit, array_engine_options(net, opt, solver));
  const auto tr = run_array_transient(engine, opt, t_stop);

  const bool to_p = dir == core::WriteDirection::ToParallel;
  ArrayWriteResult out;
  out.converged = tr.converged();
  out.dim = net.dim;
  out.steps = tr.accepted_steps();
  out.backend = engine.solver_backend();
  out.factor_cols = engine.factor_cols_total();
  out.supernodes = engine.supernode_count();
  out.supernode_cols = engine.supernode_cols();
  out.switched = net.target_mtj->state() ==
                 (to_p ? core::MtjState::Parallel
                       : core::MtjState::Antiparallel);
  if (!net.target_mtj->flip_times().empty()) {
    out.t_switch = net.target_mtj->flip_times().front() - t_start;
  }
  out.energy = source_energy(tr, to_p ? net.v_bitline : net.v_sourceline,
                             to_p ? net.bl_drive_node : net.sl_drive_node);
  for (const auto& [t, i] : net.target_mtj->current_trace()) {
    out.i_peak = std::max(out.i_peak, std::abs(i));
    if (net.target_mtj->flip_times().empty() ||
        t < net.target_mtj->flip_times().front()) {
      out.i_settled = std::abs(i);
    }
  }
  return out;
}

ArrayReadResult characterize_array_read(const core::Pdk& pdk,
                                        const ArrayNetlistOptions& opt,
                                        double t_read,
                                        spice::SolverKind solver) {
  const double t_start = 0.5e-9;
  ArrayReadResult out;
  for (const core::MtjState st :
       {core::MtjState::Parallel, core::MtjState::Antiparallel}) {
    auto net = build_array_read_netlist(pdk, opt, st, t_read);
    spice::Engine engine(net.circuit, array_engine_options(net, opt, solver));
    const auto tr = run_array_transient(engine, opt, t_start + t_read + 0.3e-9);

    // MDL pipeline: settled bitline-source current during the pulse.
    const double t_lo = t_start + 0.6 * t_read;
    const double t_hi = t_start + 0.95 * t_read;
    const std::string mdl = "meas iread avg i(" + net.v_bitline +
                            ") from=" + mdl_num(t_lo) +
                            " to=" + mdl_num(t_hi) + "\n";
    const auto meas = run_mdl_pipeline(tr, mdl);
    const double i_cell = std::abs(meas.at("iread"));
    out.dim = net.dim;
    out.steps = tr.accepted_steps();
    out.backend = engine.solver_backend();
    out.factor_cols += engine.factor_cols_total();
    out.supernodes = engine.supernode_count();
    out.supernode_cols = engine.supernode_cols();
    if (st == core::MtjState::Parallel) {
      out.i_cell_p = i_cell;
      out.energy_read = source_energy(tr, net.v_bitline, net.bl_drive_node);
    } else {
      out.i_cell_ap = i_cell;
    }
  }
  out.delta_i = out.i_cell_p - out.i_cell_ap;
  return out;
}

} // namespace mss::cells
