#include "cells/characterization.hpp"

#include <cstdio>

namespace mss::cells {

std::string mdl_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9e", v);
  return buf;
}

DeviceCards device_cards(const core::Pdk& pdk) {
  DeviceCards cards;
  const bool n45 = pdk.node == core::TechNode::N45;
  cards.nmos = spice::MosModel::nmos(n45 ? 0.35 : 0.40, n45 ? 500e-6 : 450e-6);
  cards.pmos = spice::MosModel::pmos(n45 ? 0.35 : 0.40, n45 ? 250e-6 : 220e-6);
  cards.nmos.c_gate_per_m = pdk.cmos.c_gate_per_m;
  cards.pmos.c_gate_per_m = pdk.cmos.c_gate_per_m;
  cards.w_min = 2.0 * pdk.cmos.feature_m;
  cards.l_min = pdk.cmos.feature_m;
  cards.vdd = pdk.cmos.vdd;
  return cards;
}

double source_energy(const spice::TransientResult& tr,
                     const std::string& vsource_name,
                     const std::string& plus_node,
                     const std::string& minus_node) {
  // SPICE convention: the stored branch current flows from the + terminal
  // *through the source* to the - terminal, so a delivering source carries
  // negative branch current and the power it delivers is p = -v * i.
  const auto& times = tr.times();
  double e = 0.0;
  for (std::size_t k = 1; k < times.size(); ++k) {
    const double dt = times[k] - times[k - 1];
    const double p0 = -(tr.v(plus_node, k - 1) - tr.v(minus_node, k - 1)) *
                      tr.i(vsource_name, k - 1);
    const double p1 = -(tr.v(plus_node, k) - tr.v(minus_node, k)) *
                      tr.i(vsource_name, k);
    e += 0.5 * (p0 + p1) * dt;
  }
  return e;
}

std::map<std::string, double> run_mdl_pipeline(
    const spice::TransientResult& tr, const std::string& mdl_script_text) {
  const auto script = spice::mdl::Script::parse(mdl_script_text);
  const auto results = script.evaluate(tr);
  const std::string file = spice::mdl::write_measure_file(results);
  return spice::mdl::parse_measure_file(file);
}

} // namespace mss::cells
