#include "cells/current_source.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "spice/elements.hpp"
#include "spice/mtj_element.hpp"

namespace mss::cells {

using core::MtjState;
using spice::Circuit;
using spice::DcWave;
using spice::Engine;
using spice::MtjDevice;
using spice::Mosfet;
using spice::Resistor;
using spice::VoltageSource;

CurrentSource::CurrentSource(core::Pdk pdk, CurrentSourceOptions options)
    : pdk_(std::move(pdk)), opt_(options) {}

CurrentSourceResult CurrentSource::characterize() const {
  const auto cards = device_cards(pdk_);
  const double vdd = cards.vdd;
  CurrentSourceResult out;

  for (int k = 0; k <= opt_.n_mtj; ++k) {
    Circuit ckt;
    const int vddn = ckt.node("vdd");
    const int nref = ckt.node("nref");
    const int outn = ckt.node("out");
    const int vload_n = ckt.node("vload_top");

    ckt.add(std::make_unique<VoltageSource>("vvdd", vddn, spice::kGround,
                                            std::make_unique<DcWave>(vdd)));
    // Separate supply for the load branch so i(vload) is the output current.
    ckt.add(std::make_unique<VoltageSource>("vload", vload_n, spice::kGround,
                                            std::make_unique<DcWave>(vdd)));

    // Reference chain: vdd -> MTJ_1 -> ... -> MTJ_n -> nref.
    int prev = vddn;
    for (int m = 0; m < opt_.n_mtj; ++m) {
      const int next = (m == opt_.n_mtj - 1)
                           ? nref
                           : ckt.node("chain" + std::to_string(m + 1));
      const MtjState st =
          m < k ? MtjState::Antiparallel : MtjState::Parallel;
      ckt.add(std::make_unique<MtjDevice>("xm" + std::to_string(m + 1), prev,
                                          next, pdk_.mtj, st));
      prev = next;
    }

    const double w = opt_.mirror_width_factor * cards.w_min;
    // Diode-connected reference NMOS and the mirror output NMOS.
    ckt.add(std::make_unique<Mosfet>("mref", nref, nref, spice::kGround,
                                     cards.nmos, w, cards.l_min));
    ckt.add(std::make_unique<Mosfet>("mout", outn, nref, spice::kGround,
                                     cards.nmos, w, cards.l_min));
    ckt.add(std::make_unique<Resistor>("rload", vload_n, outn, opt_.r_load));

    Engine engine(ckt);
    const auto dc = engine.dc();
    if (!dc.converged) {
      out.levels.push_back(0.0);
      continue;
    }
    // Output current = current through the load supply (delivering =>
    // negative branch current).
    // The branch index is the load source's unknown; read it via a 1-step
    // transient for the name-based accessor instead of poking indices.
    const auto tr = engine.transient(1e-10, 1e-11);
    const double i_out = -tr.i("vload", tr.size() - 1);
    out.levels.push_back(i_out);
    if (k == opt_.n_mtj / 2) {
      const double i_vdd = -tr.i("vvdd", tr.size() - 1);
      out.static_power = vdd * (i_vdd + i_out);
    }
  }

  double imax = 0.0;
  double imin = 1e9;
  for (double i : out.levels) {
    imax = std::max(imax, i);
    imin = std::min(imin, i);
  }
  out.tuning_range = imax > 0.0 ? (imax - imin) / imax : 0.0;
  return out;
}

} // namespace mss::cells
