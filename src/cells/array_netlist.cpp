#include "cells/array_netlist.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cells/characterization.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"

namespace mss::cells {

using core::MtjState;
using core::WriteDirection;
using spice::Capacitor;
using spice::DcWave;
using spice::MtjDevice;
using spice::Mosfet;
using spice::PulseWave;
using spice::Resistor;
using spice::VoltageSource;

namespace {

/// Total-line parasitics split over `segments` RC sections.
struct LineRc {
  double r_seg = 0.0;
  double c_seg = 0.0;
  std::size_t segments = 0;
};

[[nodiscard]] LineRc line_rc(double r_total, double c_total,
                             std::size_t cells, std::size_t segments) {
  LineRc rc;
  rc.segments = segments == 0 ? cells : std::min(segments, cells);
  rc.r_seg = r_total / double(rc.segments);
  rc.c_seg = c_total / double(rc.segments);
  return rc;
}

/// Segment node index ([1, segments]) a cell at `pos` of `cells` taps.
[[nodiscard]] std::size_t tap_index(std::size_t pos, std::size_t cells,
                                    std::size_t segments) {
  const std::size_t tap = ((pos + 1) * segments + cells - 1) / cells;
  return std::clamp<std::size_t>(tap, 1, segments);
}

/// Shared structure of the write and read builds; the caller wires the
/// selected-column sources afterwards.
struct ArrayBuildSpec {
  WriteDirection dir = WriteDirection::ToAntiparallel;
  MtjState target_state = MtjState::Parallel;
  double pulse_width = 0.0;
  bool is_write = true;
};

[[nodiscard]] ArrayNetlist build_common(const core::Pdk& pdk,
                                        const ArrayNetlistOptions& opt,
                                        const ArrayBuildSpec& spec) {
  if (opt.rows == 0 || opt.cols == 0 || opt.target_col >= opt.cols) {
    throw std::invalid_argument("array_netlist: bad organisation");
  }
  const auto cards = device_cards(pdk);
  const double vdd = cards.vdd;
  const double f = pdk.cmos.feature_m;
  const std::size_t rows = opt.rows;
  const std::size_t cols = opt.cols;
  const std::size_t tc = opt.target_col;
  const std::size_t tr = std::min<std::size_t>(opt.target_row, rows - 1);

  // Line totals from the PDK wire constants and the cell pitch, the same
  // derivation as nvsim::ArrayModel::derive_geometry.
  const double wl_len = opt.cell_width_f * f * double(cols);
  const double bl_len = opt.cell_height_f * f * double(rows);
  const LineRc wl = line_rc(pdk.cmos.wire_r_per_m * wl_len,
                            pdk.cmos.wire_c_per_m * wl_len +
                                opt.c_cell_gate * double(cols),
                            cols, opt.segments);
  const LineRc bl = line_rc(pdk.cmos.wire_r_per_m * bl_len,
                            pdk.cmos.wire_c_per_m * bl_len +
                                opt.c_cell_drain * double(rows),
                            rows, opt.segments);

  const double t_start = 0.5e-9;

  ArrayNetlist out;
  auto& ckt = out.circuit;

  // --- selected wordline: distributed RC, pulsed 0.2 ns before the data ---
  const int wl_drv = ckt.node("wl.0");
  {
    int prev = wl_drv;
    for (std::size_t s = 1; s <= wl.segments; ++s) {
      const int cur = ckt.node("wl." + std::to_string(s));
      ckt.add(std::make_unique<Resistor>("rwl" + std::to_string(s), prev, cur,
                                         std::max(wl.r_seg, 1e-3)));
      ckt.add(std::make_unique<Capacitor>("cwl" + std::to_string(s), cur,
                                          spice::kGround, wl.c_seg));
      prev = cur;
    }
  }
  out.v_wordline = "vwl";
  ckt.add(std::make_unique<VoltageSource>(
      "vwl", wl_drv, spice::kGround,
      std::make_unique<PulseWave>(0.0, vdd, t_start - 0.2e-9, 50e-12, 50e-12,
                                  spec.pulse_width + 0.4e-9)));

  // --- per-column bitline + source line + the selected-row cell ---
  // Column elements carry stamp group c (their matrix slots and rhs rows
  // are exclusive to the column: every row index they stamp is a private
  // bl/sl/n node — the access MOSFET references the shared wordline only
  // as a column index, and no gate-row entries exist in its stamp). The
  // wordline chain and vwl stay in the shared group (-1). The same
  // exclusivity yields the Schur block map recorded below.
  std::vector<std::pair<int, std::int32_t>> node_block;
  out.row_mtjs.resize(cols, nullptr);
  const std::size_t span = std::max<std::size_t>(opt.schur_block_cols, 1);
  for (std::size_t c = 0; c < cols; ++c) {
    const auto grp = static_cast<std::int32_t>(c);
    const auto blk = static_cast<std::int32_t>(c / span);
    const auto claim = [&](int node) { node_block.emplace_back(node, blk); };
    const std::string cs = std::to_string(c);
    const int bl0 = ckt.node("bl." + cs + ".0");
    claim(bl0);
    int prev = bl0;
    for (std::size_t s = 1; s <= bl.segments; ++s) {
      const int cur = ckt.node("bl." + cs + "." + std::to_string(s));
      claim(cur);
      ckt.add(std::make_unique<Resistor>("rbl" + cs + "_" + std::to_string(s),
                                         prev, cur,
                                         std::max(bl.r_seg, 1e-3)))
          ->set_stamp_group(grp);
      ckt.add(std::make_unique<Capacitor>("cbl" + cs + "_" +
                                              std::to_string(s),
                                          cur, spice::kGround, bl.c_seg))
          ->set_stamp_group(grp);
      prev = cur;
    }
    const std::size_t bl_tap = tap_index(tr, rows, bl.segments);
    const int bl_cell = ckt.node("bl." + cs + "." + std::to_string(bl_tap));
    const int sl = ckt.node("sl." + cs);
    const int n1 = ckt.node("n." + cs);
    claim(sl);
    claim(n1);
    const std::size_t wl_tap = tap_index(c, cols, wl.segments);
    const int gate = ckt.node("wl." + std::to_string(wl_tap));

    // Lumped source-line loading mirrors the bitline total.
    ckt.add(std::make_unique<Capacitor>("csl" + cs, sl, spice::kGround,
                                        bl.c_seg * double(bl.segments)))
        ->set_stamp_group(grp);

    const MtjState init = c == tc ? spec.target_state : opt.unselected_state;
    out.row_mtjs[c] = ckt.add(std::make_unique<MtjDevice>(
        "xmtj" + cs, bl_cell, n1, pdk.mtj, init));
    out.row_mtjs[c]->set_stamp_group(grp);
    ckt.add(std::make_unique<Mosfet>(
               "macc" + cs, n1, gate, sl, cards.nmos,
               opt.access_width_factor * cards.w_min, cards.l_min))
        ->set_stamp_group(grp);

    if (c == tc) {
      out.target_mtj = out.row_mtjs[c];
      out.bl_drive_node = "bl." + cs + ".0";
      out.sl_drive_node = "sl." + cs;
      out.bl_cell_node = "bl." + cs + "." + std::to_string(bl_tap);
    } else {
      // Inhibited column: both line ends tied to ground through the driver.
      ckt.add(std::make_unique<Resistor>("rdbl" + cs, bl0, spice::kGround,
                                         opt.r_driver_off))
          ->set_stamp_group(grp);
      ckt.add(std::make_unique<Resistor>("rdsl" + cs, sl, spice::kGround,
                                         opt.r_driver_off))
          ->set_stamp_group(grp);
    }
  }

  // --- selected-column drive ---
  const int bl_drv = ckt.find_node(out.bl_drive_node);
  const int sl_drv = ckt.find_node(out.sl_drive_node);
  out.v_bitline = "vbl";
  out.v_sourceline = "vsl";
  VoltageSource* vbl_src = nullptr;
  VoltageSource* vsl_src = nullptr;
  if (spec.is_write) {
    const bool to_p = spec.dir == WriteDirection::ToParallel;
    vbl_src = ckt.add(std::make_unique<VoltageSource>(
        "vbl", bl_drv, spice::kGround,
        std::make_unique<PulseWave>(0.0, to_p ? vdd : 0.0, t_start, 50e-12,
                                    50e-12, spec.pulse_width)));
    vsl_src = ckt.add(std::make_unique<VoltageSource>(
        "vsl", sl_drv, spice::kGround,
        std::make_unique<PulseWave>(0.0, to_p ? 0.0 : vdd, t_start, 50e-12,
                                    50e-12, spec.pulse_width)));
  } else {
    vbl_src = ckt.add(std::make_unique<VoltageSource>(
        "vbl", bl_drv, spice::kGround, std::make_unique<DcWave>(pdk.v_read)));
    vsl_src = ckt.add(std::make_unique<VoltageSource>(
        "vsl", sl_drv, spice::kGround, std::make_unique<DcWave>(0.0)));
  }
  vbl_src->set_stamp_group(static_cast<int>(tc));
  vsl_src->set_stamp_group(static_cast<int>(tc));

  out.dim = ckt.assign_unknowns();
  // Block map: column nodes to their column, the selected column's source
  // branches with it; wordline nodes and the vwl branch stay interface.
  out.partition.assign(out.dim, -1);
  for (const auto& [node, blk] : node_block) {
    out.partition[static_cast<std::size_t>(node)] = blk;
  }
  out.partition[vbl_src->branch_index()] = static_cast<std::int32_t>(tc / span);
  out.partition[vsl_src->branch_index()] = static_cast<std::int32_t>(tc / span);
  return out;
}

} // namespace

ArrayNetlist build_array_write_netlist(const core::Pdk& pdk,
                                       const ArrayNetlistOptions& opt,
                                       WriteDirection dir,
                                       double pulse_width) {
  ArrayBuildSpec spec;
  spec.is_write = true;
  spec.dir = dir;
  spec.pulse_width = pulse_width;
  // The target cell starts in the state the write must flip.
  spec.target_state = dir == WriteDirection::ToParallel
                          ? MtjState::Antiparallel
                          : MtjState::Parallel;
  return build_common(pdk, opt, spec);
}

ArrayNetlist build_array_read_netlist(const core::Pdk& pdk,
                                      const ArrayNetlistOptions& opt,
                                      MtjState state, double t_read) {
  ArrayBuildSpec spec;
  spec.is_write = false;
  spec.pulse_width = t_read;
  spec.target_state = state;
  return build_common(pdk, opt, spec);
}

} // namespace mss::cells
