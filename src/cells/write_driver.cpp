#include "cells/write_driver.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "spice/elements.hpp"

namespace mss::cells {

using spice::Capacitor;
using spice::Circuit;
using spice::DcWave;
using spice::Engine;
using spice::Mosfet;
using spice::PulseWave;
using spice::VoltageSource;

WriteDriver::WriteDriver(core::Pdk pdk, WriteDriverOptions options)
    : pdk_(std::move(pdk)), opt_(options) {}

WriteDriverResult WriteDriver::characterize() const {
  const auto cards = device_cards(pdk_);
  const double vdd = cards.vdd;
  const double t_stop = 8e-9;

  Circuit ckt;
  const int vddn = ckt.node("vdd");
  const int in = ckt.node("in");
  ckt.add(std::make_unique<VoltageSource>("vvdd", vddn, spice::kGround,
                                          std::make_unique<DcWave>(vdd)));
  // One full cycle: rise at 1 ns, fall at 4 ns.
  ckt.add(std::make_unique<VoltageSource>(
      "vin", in, spice::kGround,
      std::make_unique<PulseWave>(0.0, vdd, 1e-9, 30e-12, 30e-12, 3e-9)));

  int prev = in;
  double w = opt_.first_width_factor * cards.w_min;
  double w_last_n = w;
  for (int s = 0; s < opt_.stages; ++s) {
    const int out = ckt.node("n" + std::to_string(s + 1));
    ckt.add(std::make_unique<Mosfet>("mp" + std::to_string(s + 1), out, prev,
                                     vddn, cards.pmos, 2.0 * w, cards.l_min));
    ckt.add(std::make_unique<Mosfet>("mn" + std::to_string(s + 1), out, prev,
                                     spice::kGround, cards.nmos, w,
                                     cards.l_min));
    // Gate load of the next stage approximated by a lumped capacitor.
    const double c_gate = 3.0 * w * cards.nmos.c_gate_per_m;
    ckt.add(std::make_unique<Capacitor>("cg" + std::to_string(s + 1), out,
                                        spice::kGround, c_gate));
    w_last_n = w;
    w *= opt_.taper;
    prev = out;
  }
  const std::string out_node = "n" + std::to_string(opt_.stages);
  ckt.add(std::make_unique<Capacitor>("cload", ckt.node(out_node),
                                      spice::kGround, opt_.c_load));

  Engine engine(ckt);
  const auto tr = engine.transient(t_stop, opt_.sim_dt);

  // Odd chain inverts; measure whichever polarity with the MDL pipeline.
  const bool inverting = opt_.stages % 2 == 1;
  const double half = vdd / 2.0;
  const std::string rise_edge = inverting ? "fall" : "rise";
  const std::string fall_edge = inverting ? "rise" : "fall";
  const std::string mdl =
      "meas trise delay trig v(in) val=" + mdl_num(half) +
      " rise=1 targ v(" + out_node + ") val=" + mdl_num(half) + " " +
      rise_edge + "=1\n" +
      "meas tfall delay trig v(in) val=" + mdl_num(half) +
      " fall=1 targ v(" + out_node + ") val=" + mdl_num(half) + " " +
      fall_edge + "=1\n";
  const auto meas = run_mdl_pipeline(tr, mdl);

  WriteDriverResult out;
  out.t_rise = meas.count("trise") ? meas.at("trise") : 0.0;
  out.t_fall = meas.count("tfall") ? meas.at("tfall") : 0.0;
  out.energy_cycle = source_energy(tr, "vvdd", "vdd");
  // Drive current of the final stage at full gate drive, from the model.
  const Mosfet probe("probe", 0, 0, 0, cards.nmos, w_last_n, cards.l_min);
  out.i_drive = probe.ids(vdd, vdd);
  return out;
}

} // namespace mss::cells
