// Shared helpers for SPICE-based standard-cell characterisation: PDK ->
// transistor model cards, waveform energy integration, and the
// template-netlist -> transient -> MDL -> parse pipeline of the paper's
// Fig. 10 circuit level.
#pragma once

#include <map>
#include <string>

#include "core/pdk.hpp"
#include "spice/engine.hpp"
#include "spice/mdl.hpp"
#include "spice/mosfet.hpp"

namespace mss::cells {

/// Transistor model cards derived from a PDK node.
struct DeviceCards {
  spice::MosModel nmos;
  spice::MosModel pmos;
  double w_min = 0.0;   ///< minimum transistor width [m] (2 F)
  double l_min = 0.0;   ///< channel length [m] (1 F)
  double vdd = 1.1;     ///< supply [V]
};

/// Builds the model cards for a node.
[[nodiscard]] DeviceCards device_cards(const core::Pdk& pdk);

/// Formats a number for embedding in MDL script text. (std::to_string uses
/// fixed 6-decimal notation and truncates nanosecond-scale values to zero.)
[[nodiscard]] std::string mdl_num(double v);

/// Energy *delivered by* a voltage source over the run [J]:
/// integral of -(v(plus) - v(minus)) * i_branch dt, following the SPICE
/// convention that the branch current flows from + through the source to -
/// (a delivering source therefore carries negative branch current).
[[nodiscard]] double source_energy(const spice::TransientResult& tr,
                                   const std::string& vsource_name,
                                   const std::string& plus_node,
                                   const std::string& minus_node = "0");

/// Runs the full paper pipeline on a finished transient: evaluate the MDL
/// script text, serialise the measurement file, re-parse it, and return the
/// extracted name->value map. Exercising the round trip (rather than using
/// the in-memory results directly) is deliberate: it is the flow the paper
/// describes.
[[nodiscard]] std::map<std::string, double> run_mdl_pipeline(
    const spice::TransientResult& tr, const std::string& mdl_script_text);

} // namespace mss::cells
