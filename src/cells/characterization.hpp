// Shared helpers for SPICE-based standard-cell characterisation: PDK ->
// transistor model cards, waveform energy integration, the
// template-netlist -> transient -> MDL -> parse pipeline of the paper's
// Fig. 10 circuit level, and the array-scale characterisation drivers
// (rows x cols bit-cell blocks with wordline/bitline parasitics, solved
// through the sparse MNA backend).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "cells/array_netlist.hpp"
#include "core/pdk.hpp"
#include "spice/engine.hpp"
#include "spice/mdl.hpp"
#include "spice/mosfet.hpp"

namespace mss::cells {

/// Transistor model cards derived from a PDK node.
struct DeviceCards {
  spice::MosModel nmos;
  spice::MosModel pmos;
  double w_min = 0.0;   ///< minimum transistor width [m] (2 F)
  double l_min = 0.0;   ///< channel length [m] (1 F)
  double vdd = 1.1;     ///< supply [V]
};

/// Builds the model cards for a node.
[[nodiscard]] DeviceCards device_cards(const core::Pdk& pdk);

/// Formats a number for embedding in MDL script text. (std::to_string uses
/// fixed 6-decimal notation and truncates nanosecond-scale values to zero.)
[[nodiscard]] std::string mdl_num(double v);

/// Energy *delivered by* a voltage source over the run [J]:
/// integral of -(v(plus) - v(minus)) * i_branch dt, following the SPICE
/// convention that the branch current flows from + through the source to -
/// (a delivering source therefore carries negative branch current).
[[nodiscard]] double source_energy(const spice::TransientResult& tr,
                                   const std::string& vsource_name,
                                   const std::string& plus_node,
                                   const std::string& minus_node = "0");

/// Runs the full paper pipeline on a finished transient: evaluate the MDL
/// script text, serialise the measurement file, re-parse it, and return the
/// extracted name->value map. Exercising the round trip (rather than using
/// the in-memory results directly) is deliberate: it is the flow the paper
/// describes.
[[nodiscard]] std::map<std::string, double> run_mdl_pipeline(
    const spice::TransientResult& tr, const std::string& mdl_script_text);

/// Outcome of an array-scale write characterisation.
struct ArrayWriteResult {
  bool switched = false;   ///< target cell reached the written state
  bool converged = false;  ///< every transient step converged
  double t_switch = 0.0;   ///< data-pulse start to state-flip delay [s]
  double energy = 0.0;     ///< energy delivered by the driving source [J]
  double i_peak = 0.0;     ///< peak target-cell stack current [A]
  double i_settled = 0.0;  ///< stack current just before the flip [A]
  std::size_t dim = 0;     ///< MNA unknowns of the array system
  std::size_t steps = 0;   ///< accepted transient steps (adaptive << fixed)
  std::string backend;     ///< linear-solver backend that ran ("sparse"...)
  /// Total columns numerically factored over the run (the
  /// partial-refactorization observable, aggregated over Schur blocks
  /// when partitioned).
  std::size_t factor_cols = 0;
  std::size_t supernodes = 0;     ///< supernodal panels (width >= 2)
  std::size_t supernode_cols = 0; ///< columns covered by those panels
};

/// Outcome of an array-scale read characterisation (both states simulated).
struct ArrayReadResult {
  double i_cell_p = 0.0;   ///< settled read current, parallel state [A]
  double i_cell_ap = 0.0;  ///< settled read current, antiparallel state [A]
  double delta_i = 0.0;    ///< read margin current [A]
  double energy_read = 0.0;///< read energy per access (parallel state) [J]
  std::size_t dim = 0;
  std::size_t steps = 0;   ///< accepted steps of the last transient
  std::string backend;
  std::size_t factor_cols = 0;    ///< factored columns, both runs combined
  std::size_t supernodes = 0;     ///< supernodal panels of the last run
  std::size_t supernode_cols = 0; ///< columns covered by those panels
};

/// Write characterisation of a full rows x cols array: builds the netlist
/// (array_netlist.hpp), runs the transient on the selected backend, and
/// extracts switching delay / energy / currents. A 64 x 64 build routes
/// through the sparse solver under SolverKind::Auto.
[[nodiscard]] ArrayWriteResult characterize_array_write(
    const core::Pdk& pdk, const ArrayNetlistOptions& opt,
    core::WriteDirection dir, double pulse_width,
    spice::SolverKind solver = spice::SolverKind::Auto);

/// Read characterisation of the array: two transients (P / AP target
/// state), settled current via the MDL measurement pipeline, margin as the
/// difference — the paper's netlist -> transient -> MDL -> parse flow at
/// array scale.
[[nodiscard]] ArrayReadResult characterize_array_read(
    const core::Pdk& pdk, const ArrayNetlistOptions& opt, double t_read,
    spice::SolverKind solver = spice::SolverKind::Auto);

} // namespace mss::cells
