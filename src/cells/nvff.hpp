// Non-volatile flip-flop (NVFF): a CMOS latch shadowed by a differential
// MTJ pair — one of the MRAM-based standard cells the paper's Section II
// analyses ("single bit cells and flip-flops based on MRAM").
//
// Topology:
//   latch: cross-coupled inverters on nodes q / qb (powered by vlatch)
//   shadow: MTJ1 between CTL and q, MTJ2 between CTL and qb
//           (free terminal on the CTL side)
//
// Store  — two-phase CTL pulse with the latch holding data:
//   phase 1 (CTL = 0):  current flows from the high node through its MTJ
//                        -> writes it ANTIPARALLEL;
//   phase 2 (CTL = Vdd): current flows into the low node's MTJ
//                        -> writes it PARALLEL.
// Restore — power-up with CTL = 0: the node shadowed by the AP (high-R)
//   MTJ has the weaker pull-down, rises first, and the latch regenerates
//   the stored value non-inverted.
#pragma once

#include "cells/characterization.hpp"
#include "core/pdk.hpp"

namespace mss::cells {

/// NVFF sizing/loading options.
struct NvffOptions {
  double latch_width_factor = 10.0; ///< latch NMOS width in W_min units
  double c_node = 2e-15;            ///< q/qb node capacitance [F]
  double store_phase = 10e-9;       ///< duration of each store phase [s]
  double sim_dt = 10e-12;
};

/// Store + restore characterisation for one data value.
struct NvffResult {
  bool store_ok = false;    ///< both MTJs reached the expected states
  bool restore_ok = false;  ///< latch woke up with the stored value
  double e_store = 0.0;     ///< energy of the store operation [J]
  double t_restore = 0.0;   ///< supply-ramp start to resolved latch [s]
  double e_restore = 0.0;   ///< energy of the restore operation [J]
};

/// The NVFF characterisation driver.
class Nvff {
 public:
  Nvff(core::Pdk pdk, NvffOptions options = {});

  /// Stores `bit`, power-cycles, restores; checks both halves.
  [[nodiscard]] NvffResult characterize(bool bit) const;

 private:
  core::Pdk pdk_;
  NvffOptions opt_;
};

} // namespace mss::cells
