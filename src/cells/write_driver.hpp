// Bit-line write driver: a scaled CMOS inverter chain driving the bitline
// capacitance plus the cell. Characterised for drive strength, transition
// delay and energy — the "write circuits" of the paper's Section II cell
// inventory.
#pragma once

#include "cells/characterization.hpp"
#include "core/pdk.hpp"

namespace mss::cells {

/// Driver sizing options.
struct WriteDriverOptions {
  int stages = 3;              ///< inverter chain length
  double taper = 3.0;          ///< per-stage width multiplication
  double first_width_factor = 2.0; ///< first-stage width in W_min units
  double c_load = 100e-15;     ///< driven bitline capacitance [F]
  double sim_dt = 5e-12;
};

/// Characterisation outcome.
struct WriteDriverResult {
  double t_rise = 0.0;     ///< input-to-output rising delay (50 %-50 %) [s]
  double t_fall = 0.0;     ///< input-to-output falling delay [s]
  double energy_cycle = 0.0; ///< energy for one full low-high-low cycle [J]
  double i_drive = 0.0;    ///< saturated drive current of the last stage [A]
};

/// The write-driver characterisation driver.
class WriteDriver {
 public:
  WriteDriver(core::Pdk pdk, WriteDriverOptions options = {});

  /// Runs the transient characterisation.
  [[nodiscard]] WriteDriverResult characterize() const;

 private:
  core::Pdk pdk_;
  WriteDriverOptions opt_;
};

} // namespace mss::cells
