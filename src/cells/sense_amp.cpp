#include "cells/sense_amp.hpp"

#include <cmath>
#include <memory>

#include "spice/elements.hpp"

namespace mss::cells {

using spice::Capacitor;
using spice::Circuit;
using spice::DcWave;
using spice::Engine;
using spice::Mosfet;
using spice::PulseWave;
using spice::Switch;
using spice::VoltageSource;

SenseAmp::SenseAmp(core::Pdk pdk, SenseAmpOptions options)
    : pdk_(std::move(pdk)), opt_(options) {}

SenseAmpResult SenseAmp::resolve(double v_plus, double v_minus) const {
  const auto cards = device_cards(pdk_);
  const double vdd = cards.vdd;
  const double t_pc_end = 0.5e-9;  // precharge released
  const double t_se = 0.7e-9;      // sense enable rises
  const double t_stop = 3.0e-9;

  Circuit ckt;
  const int vddn = ckt.node("vdd");
  const int outp = ckt.node("outp");
  const int outn = ckt.node("outn");
  const int tail = ckt.node("tail");
  const int inp = ckt.node("inp");
  const int inn = ckt.node("inn");
  const int se = ckt.node("se");
  const int pc = ckt.node("pc");

  ckt.add(std::make_unique<VoltageSource>("vvdd", vddn, spice::kGround,
                                          std::make_unique<DcWave>(vdd)));
  ckt.add(std::make_unique<VoltageSource>("vinp", inp, spice::kGround,
                                          std::make_unique<DcWave>(v_plus)));
  ckt.add(std::make_unique<VoltageSource>("vinn", inn, spice::kGround,
                                          std::make_unique<DcWave>(v_minus)));
  ckt.add(std::make_unique<VoltageSource>(
      "vse", se, spice::kGround,
      std::make_unique<PulseWave>(0.0, vdd, t_se, 30e-12, 30e-12,
                                  t_stop - t_se)));
  // PC high initially, drops before SE.
  ckt.add(std::make_unique<VoltageSource>(
      "vpc", pc, spice::kGround,
      std::make_unique<PulseWave>(vdd, 0.0, t_pc_end, 30e-12, 30e-12,
                                  t_stop)));

  // Precharge switches to VDD while PC is high.
  ckt.add(std::make_unique<Switch>("spc1", outp, vddn, pc, spice::kGround,
                                   vdd / 2.0, 200.0));
  ckt.add(std::make_unique<Switch>("spc2", outn, vddn, pc, spice::kGround,
                                   vdd / 2.0, 200.0));

  // Cross-coupled inverters.
  const double wl_latch = opt_.latch_width_factor * cards.w_min;
  ckt.add(std::make_unique<Mosfet>("mp1", outp, outn, vddn, cards.pmos,
                                   2.0 * wl_latch, cards.l_min));
  ckt.add(std::make_unique<Mosfet>("mp2", outn, outp, vddn, cards.pmos,
                                   2.0 * wl_latch, cards.l_min));
  ckt.add(std::make_unique<Mosfet>("mn1", outp, outn, tail, cards.nmos,
                                   wl_latch, cards.l_min));
  ckt.add(std::make_unique<Mosfet>("mn2", outn, outp, tail, cards.nmos,
                                   wl_latch, cards.l_min));

  // Input pair: inp discharges outp (so the *higher* input drives its
  // output low; the complementary output resolves high).
  const double w_in = opt_.input_pair_width_factor * cards.w_min;
  ckt.add(std::make_unique<Mosfet>("min1", outp, inp, tail, cards.nmos, w_in,
                                   cards.l_min));
  ckt.add(std::make_unique<Mosfet>("min2", outn, inn, tail, cards.nmos, w_in,
                                   cards.l_min));

  // Tail enable.
  ckt.add(std::make_unique<Mosfet>("mtail", tail, se, spice::kGround,
                                   cards.nmos,
                                   opt_.tail_width_factor * cards.w_min,
                                   cards.l_min));

  ckt.add(std::make_unique<Capacitor>("cop", outp, spice::kGround, opt_.c_out));
  ckt.add(std::make_unique<Capacitor>("con", outn, spice::kGround, opt_.c_out));
  ckt.add(std::make_unique<Capacitor>("ct", tail, spice::kGround, 2e-15));

  Engine engine(ckt);
  const auto tr = engine.transient(t_stop, opt_.sim_dt);

  SenseAmpResult out;
  out.energy = source_energy(tr, "vvdd", "vdd");

  // Resolution: |outp - outn| exceeds vdd/2 after SE.
  const auto& times = tr.times();
  for (std::size_t k = 0; k < times.size(); ++k) {
    if (times[k] < t_se) continue;
    const double d = tr.v("outp", k) - tr.v("outn", k);
    if (std::abs(d) > vdd / 2.0) {
      out.resolved = true;
      out.t_resolve = times[k] - t_se;
      // Higher input discharges its own output: v_plus > v_minus should
      // give outp low / outn high, i.e. d < 0.
      out.decision_correct = (v_plus > v_minus) ? (d < 0.0) : (d > 0.0);
      break;
    }
  }
  return out;
}

double SenseAmp::min_resolvable_imbalance(double t_budget,
                                          double v_common) const {
  double lo = 0.5e-3;
  double hi = 0.3;
  auto ok = [&](double dv) {
    const auto r = resolve(v_common + dv / 2.0, v_common - dv / 2.0);
    return r.resolved && r.decision_correct && r.t_resolve <= t_budget;
  };
  if (!ok(hi)) return -1.0;
  if (ok(lo)) return lo;
  for (int it = 0; it < 18; ++it) {
    const double mid = std::sqrt(lo * hi);
    if (ok(mid))
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

} // namespace mss::cells
