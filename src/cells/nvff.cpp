#include "cells/nvff.hpp"

#include <cmath>
#include <memory>

#include "spice/elements.hpp"
#include "spice/mtj_element.hpp"

namespace mss::cells {

using core::MtjState;
using spice::Capacitor;
using spice::Circuit;
using spice::DcWave;
using spice::Engine;
using spice::MtjDevice;
using spice::Mosfet;
using spice::PulseWave;
using spice::PwlWave;
using spice::VoltageSource;

Nvff::Nvff(core::Pdk pdk, NvffOptions options)
    : pdk_(std::move(pdk)), opt_(options) {}

namespace {

/// Adds the cross-coupled latch between q and qb, powered by `vddn`.
void add_latch(Circuit& ckt, int q, int qb, int vddn,
               const DeviceCards& cards, double width_factor) {
  const double wn = width_factor * cards.w_min;
  ckt.add(std::make_unique<Mosfet>("lp1", q, qb, vddn, cards.pmos, 2.0 * wn,
                                   cards.l_min));
  ckt.add(std::make_unique<Mosfet>("ln1", q, qb, spice::kGround, cards.nmos,
                                   wn, cards.l_min));
  ckt.add(std::make_unique<Mosfet>("lp2", qb, q, vddn, cards.pmos, 2.0 * wn,
                                   cards.l_min));
  ckt.add(std::make_unique<Mosfet>("ln2", qb, q, spice::kGround, cards.nmos,
                                   wn, cards.l_min));
}

} // namespace

NvffResult Nvff::characterize(bool bit) const {
  const auto cards = device_cards(pdk_);
  const double vdd = cards.vdd;
  NvffResult out;

  // ---------------- store phase ----------------
  MtjState mtj_q_state;
  MtjState mtj_qb_state;
  {
    Circuit ckt;
    const int vddn = ckt.node("vdd");
    const int q = ckt.node("q");
    const int qb = ckt.node("qb");
    const int ctl = ckt.node("ctl");

    ckt.add(std::make_unique<VoltageSource>("vvdd", vddn, spice::kGround,
                                            std::make_unique<DcWave>(vdd)));
    // CTL: 0 during phase 1, Vdd during phase 2.
    const double t1 = opt_.store_phase;
    const double t2 = 2.0 * opt_.store_phase;
    ckt.add(std::make_unique<VoltageSource>(
        "vctl", ctl, spice::kGround,
        std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {t1, 0.0}, {t1 + 0.2e-9, vdd}, {t2, vdd}})));

    add_latch(ckt, q, qb, vddn, cards, opt_.latch_width_factor);

    // Seed the latch with the data via node capacitors' initial conditions.
    ckt.add(std::make_unique<Capacitor>("cq", q, spice::kGround, opt_.c_node,
                                        bit ? vdd : 0.0));
    ckt.add(std::make_unique<Capacitor>("cqb", qb, spice::kGround,
                                        opt_.c_node, bit ? 0.0 : vdd));

    // Shadow MTJs: free terminal on CTL.
    auto* m_q = ckt.add(std::make_unique<MtjDevice>("xmq", ctl, q, pdk_.mtj,
                                                    MtjState::Parallel));
    auto* m_qb = ckt.add(std::make_unique<MtjDevice>("xmqb", ctl, qb,
                                                     pdk_.mtj,
                                                     MtjState::Antiparallel));

    Engine engine(ckt);
    const auto tr = engine.transient(t2, opt_.sim_dt,
                                     /*use_initial_conditions=*/true);
    out.e_store = source_energy(tr, "vvdd", "vdd") +
                  source_energy(tr, "vctl", "ctl");

    mtj_q_state = m_q->state();
    mtj_qb_state = m_qb->state();
    // Expected: high node's MTJ AP, low node's MTJ P.
    const MtjState want_q = bit ? MtjState::Antiparallel : MtjState::Parallel;
    const MtjState want_qb = bit ? MtjState::Parallel : MtjState::Antiparallel;
    out.store_ok = (mtj_q_state == want_q) && (mtj_qb_state == want_qb);
  }

  // ---------------- restore phase ----------------
  {
    Circuit ckt;
    const int vddn = ckt.node("vdd");
    const int q = ckt.node("q");
    const int qb = ckt.node("qb");
    const int ctl = ckt.node("ctl");

    // Supply ramps up from zero: power-on restore.
    const double t_ramp0 = 0.5e-9;
    const double t_ramp1 = 1.5e-9;
    const double t_stop = 8e-9;
    ckt.add(std::make_unique<VoltageSource>(
        "vvdd", vddn, spice::kGround,
        std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {t_ramp0, 0.0}, {t_ramp1, vdd}, {t_stop, vdd}})));
    ckt.add(std::make_unique<VoltageSource>("vctl", ctl, spice::kGround,
                                            std::make_unique<DcWave>(0.0)));

    add_latch(ckt, q, qb, vddn, cards, opt_.latch_width_factor);
    ckt.add(std::make_unique<Capacitor>("cq", q, spice::kGround, opt_.c_node));
    ckt.add(std::make_unique<Capacitor>("cqb", qb, spice::kGround,
                                        opt_.c_node));
    ckt.add(std::make_unique<MtjDevice>("xmq", ctl, q, pdk_.mtj,
                                        mtj_q_state));
    ckt.add(std::make_unique<MtjDevice>("xmqb", ctl, qb, pdk_.mtj,
                                        mtj_qb_state));

    Engine engine(ckt);
    const auto tr = engine.transient(t_stop, opt_.sim_dt,
                                     /*use_initial_conditions=*/true);
    out.e_restore = source_energy(tr, "vvdd", "vdd");

    const auto& times = tr.times();
    for (std::size_t k = 0; k < times.size(); ++k) {
      if (times[k] < t_ramp0) continue;
      const double d = tr.v("q", k) - tr.v("qb", k);
      if (std::abs(d) > vdd / 2.0) {
        out.t_restore = times[k] - t_ramp0;
        out.restore_ok = bit ? (d > 0.0) : (d < 0.0);
        break;
      }
    }
  }
  return out;
}

} // namespace mss::cells
