// Latch-type (precharged, cross-coupled) sense amplifier, characterised at
// transistor level. This is the cell the paper lists among the SPICE-
// analysed periphery ("sense amplifiers, and write circuits").
//
// Topology (classic current-latched SA):
//
//   precharge switches: outp/outn -> VDD while PC high
//   cross-coupled inverters between outp and outn (regeneration)
//   input pair: M1 (gate inp) discharges outp, M2 (gate inn) discharges outn
//   tail NMOS enabled by SE
//
// The characterisation reports the regeneration delay from sense-enable to
// a resolved output for a given input imbalance, the minimum resolvable
// imbalance at a given timing, and the per-operation energy.
#pragma once

#include "cells/characterization.hpp"
#include "core/pdk.hpp"

namespace mss::cells {

/// Sense-amp sizing/loading options.
struct SenseAmpOptions {
  double input_pair_width_factor = 6.0; ///< in units of W_min
  double latch_width_factor = 4.0;
  double tail_width_factor = 8.0;
  double c_out = 5e-15;  ///< output node loading [F]
  double sim_dt = 5e-12; ///< transient step [s]
};

/// One sense resolution run.
struct SenseAmpResult {
  bool resolved = false;     ///< outputs separated past Vdd/2 within the run
  bool decision_correct = false; ///< higher input produced logic-1 output
  double t_resolve = 0.0;    ///< SE-rise to resolved-output delay [s]
  double energy = 0.0;       ///< energy drawn from VDD for the operation [J]
};

/// The sense amplifier characterisation driver.
class SenseAmp {
 public:
  SenseAmp(core::Pdk pdk, SenseAmpOptions options = {});

  /// Resolves inputs v_plus vs v_minus (volts at the input-pair gates).
  [[nodiscard]] SenseAmpResult resolve(double v_plus, double v_minus) const;

  /// Smallest input imbalance (in volts) the SA resolves correctly within
  /// `t_budget`, found by bisection over the imbalance. Returns the
  /// imbalance, or a negative value when even a large imbalance fails.
  [[nodiscard]] double min_resolvable_imbalance(double t_budget,
                                                double v_common = 0.6) const;

  /// The PDK in use.
  [[nodiscard]] const core::Pdk& pdk() const { return pdk_; }

 private:
  core::Pdk pdk_;
  SenseAmpOptions opt_;
};

} // namespace mss::cells
