// Structured sweep output: named columns of typed cells with sort/filter
// and text / CSV / JSON emission. Replaces the hand-rolled printf tables
// of the bench fig drivers — one table object serves the console view,
// the re-plottable CSV, and the machine-readable JSON.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sweep/param_space.hpp" // Value

namespace mss::sweep {

class ResultTable {
 public:
  /// Creates a table with the given column names (must be unique).
  explicit ResultTable(std::vector<std::string> columns);

  /// Appends a row; must have one cell per column.
  void add_row(std::vector<Value> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  /// Index of a column; throws std::out_of_range when unknown.
  [[nodiscard]] std::size_t col_index(const std::string& name) const;

  [[nodiscard]] const Value& at(std::size_t row, std::size_t col) const;
  [[nodiscard]] const Value& at(std::size_t row,
                                const std::string& col) const;
  /// Numeric cell view (int/real); throws on strings.
  [[nodiscard]] double number(std::size_t row, const std::string& col) const;

  /// Stable-sorts rows by a column: numerically when every cell of the
  /// column is numeric, lexicographically on the text form otherwise.
  void sort_by(const std::string& col, bool ascending = true);

  /// Rows for which `keep(*this, row)` holds, in order.
  [[nodiscard]] ResultTable filter(
      const std::function<bool(const ResultTable&, std::size_t)>& keep) const;

  /// Aligned console rendering (reals formatted "%.*g" with `precision`).
  [[nodiscard]] std::string str(int precision = 5) const;

  /// RFC-4180-ish CSV ("%.12g" reals, so series can be re-plotted
  /// faithfully).
  [[nodiscard]] std::string csv() const;
  bool write_csv(const std::string& path) const;

  /// JSON array of row objects; ints stay ints, reals "%.12g", strings
  /// escaped.
  [[nodiscard]] std::string json() const;
  bool write_json(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Value>> rows_;
};

} // namespace mss::sweep
