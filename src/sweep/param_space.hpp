// Declarative parameter spaces for design-space exploration.
//
// Every layer of the flow sweeps knobs — NVSim organisations, MAGPIE
// scenario x workload grids, retention targets, thermal corners, the
// fig-reproduction axes. A ParamSpace describes such a sweep as data:
// typed axes (value lists, linear/log ranges) composed by *cross*
// (Cartesian product) and *zip* (axes advancing in lock-step). The space
// is never materialised: a point is decoded from its flat index on
// demand (row-major, last dimension fastest — the order the old nested
// for-loops produced), which is what lets sweep::Runner chunk the index
// range over the thread pool deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace mss::sweep {

/// A parameter value: integer, real, or categorical.
using Value = std::variant<std::int64_t, double, std::string>;

/// Canonical text form ("%.17g" for reals, so distinct doubles never
/// collide — the memoisation key builds on this).
[[nodiscard]] std::string to_string(const Value& v);

/// Numeric view: int64 and double convert, a string throws
/// std::invalid_argument.
[[nodiscard]] double as_number(const Value& v);

/// One coordinate assignment of a sweep: named values plus the flat index
/// the space decoded it from.
class Point {
 public:
  Point(std::size_t index, std::vector<std::pair<std::string, Value>> coords)
      : index_(index), coords_(std::move(coords)) {}

  /// Flat index in the enclosing space — the stable identity output slots
  /// and RNG substreams are keyed off.
  [[nodiscard]] std::size_t index() const { return index_; }

  [[nodiscard]] std::size_t size() const { return coords_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return coords_[i].first;
  }
  [[nodiscard]] const Value& value(std::size_t i) const {
    return coords_[i].second;
  }

  /// Coordinate by name; throws std::out_of_range when absent.
  [[nodiscard]] const Value& at(const std::string& name) const;
  /// Numeric coordinate (int/real); throws on strings.
  [[nodiscard]] double number(const std::string& name) const;
  /// Integer coordinate; throws std::invalid_argument when not an int64.
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  /// Categorical coordinate; throws std::invalid_argument when not a string.
  [[nodiscard]] const std::string& str(const std::string& name) const;

  /// Canonical "name=<tag>value;..." key — a pure, *injective* function of
  /// the coordinate list (never of the index). Values carry a one-char type
  /// tag ('i' int64, 'd' double at %.17g, 's' string) and '\', '=', ';' are
  /// backslash-escaped in names and string values, so distinct coordinate
  /// lists always produce distinct keys. Used to memoise repeated points
  /// and as the identity of the persistent cross-run result cache — the
  /// format is a stability contract (src/sweep/README.md).
  [[nodiscard]] std::string key() const;

 private:
  std::size_t index_;
  std::vector<std::pair<std::string, Value>> coords_;
};

/// One named, ordered list of values.
class Axis {
 public:
  /// Explicit value list (mixed types allowed via Value).
  [[nodiscard]] static Axis values(std::string name, std::vector<Value> vals);
  /// Typed list conveniences.
  [[nodiscard]] static Axis list(std::string name, std::vector<double> vals);
  [[nodiscard]] static Axis list(std::string name,
                                 std::vector<std::int64_t> vals);
  [[nodiscard]] static Axis list(std::string name,
                                 std::vector<std::string> vals);
  /// `n` evenly spaced reals with both endpoints included (n == 1 -> lo).
  [[nodiscard]] static Axis linear(std::string name, double lo, double hi,
                                   std::size_t n);
  /// `n` geometrically spaced reals with both endpoints *exactly* included
  /// (n == 1 -> lo). lo and hi must be nonzero and same-signed.
  [[nodiscard]] static Axis log(std::string name, double lo, double hi,
                                std::size_t n);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const Value& at(std::size_t i) const { return values_[i]; }

 private:
  Axis(std::string name, std::vector<Value> vals)
      : name_(std::move(name)), values_(std::move(vals)) {}

  std::string name_;
  std::vector<Value> values_;
};

/// A composed sweep: an ordered list of dimensions, each one axis or a
/// zipped group of equal-length axes. `size()` is the product of the
/// dimension lengths; `at(i)` decodes a flat index row-major (the last
/// dimension varies fastest).
class ParamSpace {
 public:
  /// The empty space: one point with no coordinates (the identity of
  /// cross composition).
  ParamSpace() = default;

  /// Cross of a list of axes, in order.
  [[nodiscard]] static ParamSpace of(std::vector<Axis> axes);

  /// Appends one axis as a new crossed dimension. Returns *this so spaces
  /// read as chains: `ParamSpace().cross(a).cross(b).zip({c, d})`.
  ParamSpace& cross(Axis axis);
  /// Appends every dimension of `other` (Cartesian product of spaces).
  ParamSpace& cross(const ParamSpace& other);
  /// Appends a zipped group: all axes advance together as one dimension
  /// (sizes must match; throws std::invalid_argument otherwise).
  ParamSpace& zip(std::vector<Axis> axes);

  /// Number of points (1 for the empty space, 0 when any dimension is
  /// empty).
  [[nodiscard]] std::size_t size() const;
  /// Number of dimensions.
  [[nodiscard]] std::size_t dims() const { return dims_.size(); }
  /// The composed structure itself — each entry one dimension, holding the
  /// axis (cross) or zipped axis group advancing together. Read-only
  /// introspection for the wire/cache serialization layer; the decode
  /// contract stays at()/names().
  [[nodiscard]] const std::vector<std::vector<Axis>>& dimensions() const {
    return dims_;
  }
  /// Coordinate names, in decode order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Decodes flat index `i` (row-major); throws std::out_of_range when
  /// i >= size().
  [[nodiscard]] Point at(std::size_t i) const;

 private:
  void add_dim(std::vector<Axis> axes);

  std::vector<std::vector<Axis>> dims_; ///< each entry a zipped axis group
};

} // namespace mss::sweep
