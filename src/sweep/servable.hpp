// Servable experiments: the uniform row-typed experiment shape the job
// server executes and caches.
//
// An Experiment<Result> is free to return any C++ type, which is perfect
// in-process and useless on a wire. A RowExperiment instead evaluates a
// Point straight to a ResultTable row (std::vector<Value>) under a fixed
// column list — the one shape that is simultaneously streamable (the
// server sends rows as they complete), cacheable (rows serialize to the
// persistent store byte-for-byte) and renderable (console/CSV/JSON via
// ResultTable). Subsystems that want to be servable (nvsim, magpie)
// expose a make-function returning one of these; src/server/registry
// collects them under stable ids.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/param_space.hpp"
#include "util/rng.hpp"

namespace mss::sweep {

/// A named, versioned, row-typed experiment the job server can execute.
///
/// `evaluate` must be pure given (point, rng) — the same determinism
/// contract as Experiment<Result> — because the persistent cache replays
/// rows across processes: an impure evaluation would make a warm rerun
/// observably different from a cold one. Bump `version` whenever the
/// evaluation (or the meaning of a column) changes; the cache keys on it,
/// so stale rows from older code can never serve a new request.
struct RowExperiment {
  std::string id;               ///< stable registry id, e.g. "nvsim.explore"
  std::uint32_t version = 1;    ///< bump on any semantic change
  std::string description;      ///< one line for client listings
  std::vector<std::string> columns;
  /// The space served when a request does not carry its own (derived
  /// lazily — deriving may itself run the cross-layer flow).
  std::function<ParamSpace()> default_space;
  /// One table row per point; must have columns.size() cells.
  std::function<std::vector<Value>(const Point&, util::Rng&)> evaluate;
};

} // namespace mss::sweep
