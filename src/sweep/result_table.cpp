#include "sweep/result_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace mss::sweep {

namespace {

bool is_numeric(const Value& v) {
  return !std::holds_alternative<std::string>(v);
}

std::string format_real(double d, const char* fmt) {
  char buf[40];
  std::snprintf(buf, sizeof buf, fmt, d);
  return buf;
}

/// Cell text for human/CSV emission.
std::string cell_text(const Value& v, int precision) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char fmt[8];
    std::snprintf(fmt, sizeof fmt, "%%.%dg", precision);
    return format_real(*d, fmt);
  }
  return std::get<std::string>(v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_cell(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    if (!std::isfinite(*d)) return "null"; // JSON has no inf/nan
    return format_real(*d, "%.12g");
  }
  return '"' + json_escape(std::get<std::string>(v)) + '"';
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  return bool(out);
}

} // namespace

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("ResultTable: no columns");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (std::size_t j = i + 1; j < columns_.size(); ++j) {
      if (columns_[i] == columns_[j]) {
        throw std::invalid_argument("ResultTable: duplicate column '" +
                                    columns_[i] + "'");
      }
    }
  }
}

void ResultTable::add_row(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument(
        "ResultTable::add_row: " + std::to_string(row.size()) +
        " cells for " + std::to_string(columns_.size()) + " columns");
  }
  rows_.push_back(std::move(row));
}

std::size_t ResultTable::col_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  throw std::out_of_range("ResultTable: no column named '" + name + "'");
}

const Value& ResultTable::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

const Value& ResultTable::at(std::size_t row, const std::string& col) const {
  return rows_.at(row)[col_index(col)];
}

double ResultTable::number(std::size_t row, const std::string& col) const {
  return as_number(at(row, col));
}

void ResultTable::sort_by(const std::string& col, bool ascending) {
  const std::size_t c = col_index(col);
  const bool numeric = std::all_of(
      rows_.begin(), rows_.end(),
      [c](const std::vector<Value>& r) { return is_numeric(r[c]); });
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
                     const bool lt =
                         numeric ? as_number(a[c]) < as_number(b[c])
                                 : to_string(a[c]) < to_string(b[c]);
                     const bool gt =
                         numeric ? as_number(b[c]) < as_number(a[c])
                                 : to_string(b[c]) < to_string(a[c]);
                     return ascending ? lt : gt;
                   });
}

ResultTable ResultTable::filter(
    const std::function<bool(const ResultTable&, std::size_t)>& keep) const {
  ResultTable out(columns_);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (keep(*this, r)) out.rows_.push_back(rows_[r]);
  }
  return out;
}

std::string ResultTable::str(int precision) const {
  util::TextTable t(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(cell_text(v, precision));
    t.add_row(std::move(cells));
  }
  return t.str();
}

std::string ResultTable::csv() const {
  util::CsvWriter w(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(cell_text(v, 12));
    w.add_row(std::move(cells));
  }
  return w.str();
}

bool ResultTable::write_csv(const std::string& path) const {
  return write_text_file(path, csv());
}

std::string ResultTable::json() const {
  std::string out = "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) out += ", ";
      out += '"' + json_escape(columns_[c]) + "\": " + json_cell(rows_[r][c]);
    }
    out += r + 1 == rows_.size() ? "}\n" : "},\n";
  }
  out += "]\n";
  return out;
}

bool ResultTable::write_json(const std::string& path) const {
  return write_text_file(path, json());
}

} // namespace mss::sweep
