#include "sweep/param_space.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mss::sweep {

std::string to_string(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

double as_number(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return double(*i);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  throw std::invalid_argument("sweep: value '" + std::get<std::string>(v) +
                              "' is not numeric");
}

const Value& Point::at(const std::string& name) const {
  for (const auto& [n, v] : coords_) {
    if (n == name) return v;
  }
  throw std::out_of_range("sweep::Point: no coordinate named '" + name + "'");
}

double Point::number(const std::string& name) const {
  return as_number(at(name));
}

std::int64_t Point::integer(const std::string& name) const {
  const Value& v = at(name);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw std::invalid_argument("sweep::Point: coordinate '" + name +
                              "' is not an integer");
}

const std::string& Point::str(const std::string& name) const {
  const Value& v = at(name);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw std::invalid_argument("sweep::Point: coordinate '" + name +
                              "' is not a string");
}

namespace {

/// Backslash-escapes the key separators so arbitrary names/strings cannot
/// forge a coordinate boundary ("a" = "1;b=s2" must not collide with
/// "a" = "1" x "b" = 2).
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '\\' || c == '=' || c == ';') out += '\\';
    out += c;
  }
}

} // namespace

std::string Point::key() const {
  // Stable injective key format (the persistent result cache depends on it
  // — see src/sweep/README.md "Point::key() stability contract"):
  //   key   := coord*
  //   coord := esc(name) '=' tag text ';'
  //   tag   := 'i' (int64, decimal) | 'd' (double, %.17g) | 's' (string)
  // with '\', '=' and ';' backslash-escaped in names and string values.
  // The type tag keeps int64(1) ("i1") distinct from double(1.0) ("d1");
  // %.17g round-trips every finite double, so distinct doubles never
  // collide. Changing any of this invalidates every on-disk cache.
  std::string out;
  for (const auto& [n, v] : coords_) {
    append_escaped(out, n);
    out += '=';
    if (std::holds_alternative<std::int64_t>(v)) {
      out += 'i';
      out += sweep::to_string(v);
    } else if (std::holds_alternative<double>(v)) {
      out += 'd';
      out += sweep::to_string(v);
    } else {
      out += 's';
      append_escaped(out, std::get<std::string>(v));
    }
    out += ';';
  }
  return out;
}

Axis Axis::values(std::string name, std::vector<Value> vals) {
  if (name.empty()) throw std::invalid_argument("Axis: empty name");
  return Axis(std::move(name), std::move(vals));
}

Axis Axis::list(std::string name, std::vector<double> vals) {
  std::vector<Value> out(vals.begin(), vals.end());
  return values(std::move(name), std::move(out));
}

Axis Axis::list(std::string name, std::vector<std::int64_t> vals) {
  std::vector<Value> out(vals.begin(), vals.end());
  return values(std::move(name), std::move(out));
}

Axis Axis::list(std::string name, std::vector<std::string> vals) {
  std::vector<Value> out;
  out.reserve(vals.size());
  for (auto& s : vals) out.emplace_back(std::move(s));
  return values(std::move(name), std::move(out));
}

Axis Axis::linear(std::string name, double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("Axis::linear: n must be positive");
  std::vector<Value> vals;
  vals.reserve(n);
  if (n == 1) {
    vals.emplace_back(lo);
  } else {
    const double step = (hi - lo) / double(n - 1);
    for (std::size_t k = 0; k < n; ++k) {
      vals.emplace_back(k + 1 == n ? hi : lo + double(k) * step);
    }
  }
  return values(std::move(name), std::move(vals));
}

Axis Axis::log(std::string name, double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("Axis::log: n must be positive");
  if (lo == 0.0 || hi == 0.0 || (lo < 0.0) != (hi < 0.0)) {
    throw std::invalid_argument(
        "Axis::log: endpoints must be nonzero and same-signed");
  }
  std::vector<Value> vals;
  vals.reserve(n);
  if (n == 1) {
    vals.emplace_back(lo);
  } else {
    const double ratio = std::pow(hi / lo, 1.0 / double(n - 1));
    double v = lo;
    for (std::size_t k = 0; k < n; ++k) {
      vals.emplace_back(k == 0 ? lo : (k + 1 == n ? hi : v));
      v *= ratio;
    }
  }
  return values(std::move(name), std::move(vals));
}

ParamSpace ParamSpace::of(std::vector<Axis> axes) {
  ParamSpace s;
  for (auto& a : axes) s.cross(std::move(a));
  return s;
}

ParamSpace& ParamSpace::cross(Axis axis) {
  add_dim({std::move(axis)});
  return *this;
}

ParamSpace& ParamSpace::cross(const ParamSpace& other) {
  if (&other == this) {
    // Self-cross needs a copy so add_dim's name check sees a stable list.
    const ParamSpace copy = other;
    return cross(copy);
  }
  for (const auto& group : other.dims_) add_dim(group);
  return *this;
}

ParamSpace& ParamSpace::zip(std::vector<Axis> axes) {
  if (axes.empty()) throw std::invalid_argument("ParamSpace::zip: no axes");
  for (const auto& a : axes) {
    if (a.size() != axes.front().size()) {
      throw std::invalid_argument("ParamSpace::zip: axis '" + a.name() +
                                  "' length differs from '" +
                                  axes.front().name() + "'");
    }
  }
  add_dim(std::move(axes));
  return *this;
}

void ParamSpace::add_dim(std::vector<Axis> axes) {
  for (const auto& a : axes) {
    for (const auto& group : dims_) {
      for (const auto& existing : group) {
        if (existing.name() == a.name()) {
          throw std::invalid_argument("ParamSpace: duplicate axis name '" +
                                      a.name() + "'");
        }
      }
    }
    for (const auto& sibling : axes) {
      if (&sibling != &a && sibling.name() == a.name()) {
        throw std::invalid_argument("ParamSpace: duplicate axis name '" +
                                    a.name() + "'");
      }
    }
  }
  dims_.push_back(std::move(axes));
}

std::size_t ParamSpace::size() const {
  std::size_t n = 1;
  for (const auto& group : dims_) n *= group.front().size();
  return n;
}

std::vector<std::string> ParamSpace::names() const {
  std::vector<std::string> out;
  for (const auto& group : dims_) {
    for (const auto& a : group) out.push_back(a.name());
  }
  return out;
}

Point ParamSpace::at(std::size_t i) const {
  if (i >= size()) {
    throw std::out_of_range("ParamSpace::at: index " + std::to_string(i) +
                            " >= size " + std::to_string(size()));
  }
  // Row-major mixed-radix decode, last dimension fastest.
  std::vector<std::size_t> digit(dims_.size(), 0);
  std::size_t rest = i;
  for (std::size_t d = dims_.size(); d-- > 0;) {
    const std::size_t len = dims_[d].front().size();
    digit[d] = rest % len;
    rest /= len;
  }
  std::vector<std::pair<std::string, Value>> coords;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    for (const auto& a : dims_[d]) {
      coords.emplace_back(a.name(), a.at(digit[d]));
    }
  }
  return Point(i, std::move(coords));
}

} // namespace mss::sweep
