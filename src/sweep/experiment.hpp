// Declarative experiments over a ParamSpace, executed by a deterministic
// parallel Runner.
//
// An Experiment<Result> is a named, pure evaluation: given a Point (and a
// per-point RNG stream for stochastic models), produce a Result. The
// Runner chunks the space's flat index range over the PR-1 thread pool
// and writes each result into its point-indexed slot, so the output
// vector is bit-identical for any thread count.
//
// Determinism contract (shared with the Monte-Carlo kernels):
//  * the chunk layout is a pure function of (space size, chunk_size),
//    never of the thread count;
//  * chunk c draws from jump substream c of a base stream seeded with
//    RunOptions::seed, and the point at in-chunk offset j forks that
//    substream with label j — so the RNG a point sees is a pure function
//    of (seed, chunk_size, point index);
//  * with memoize = true, repeated points (same Point::key()) are
//    evaluated once — at the RNG position of their *first* occurrence —
//    and the result is copied to every duplicate slot. For deterministic
//    evaluations memoisation is invisible; for stochastic ones the
//    duplicates inherit the first draw instead of re-sampling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sweep/param_space.hpp"
#include "sweep/result_table.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mss::sweep {

/// A declarative unit of work: evaluate one Point into a Result. Results
/// must be default-constructible (the Runner pre-sizes the output vector)
/// and copyable (memoised duplicates are copies).
template <typename Result>
struct Experiment {
  std::string name;
  std::function<Result(const Point&, util::Rng&)> evaluate;
};

/// Deduces the Result type from the callable.
template <typename Fn>
[[nodiscard]] auto make_experiment(std::string name, Fn fn) {
  using Result = decltype(fn(std::declval<const Point&>(),
                             std::declval<util::Rng&>()));
  return Experiment<Result>{std::move(name), std::move(fn)};
}

/// Execution knobs.
struct RunOptions {
  /// Thread policy shared with every parallel kernel: 0 = the shared
  /// global pool, 1 = serial inline, N = a shared pool of N threads.
  std::size_t threads = 0;
  /// Points per chunk (the unit of work stealing *and* of RNG keying —
  /// changing it changes stochastic draws, not determinism).
  std::size_t chunk_size = 1;
  /// Base seed of the per-point RNG streams.
  std::uint64_t seed = 0x5EEDC0DEull;
  /// Evaluate repeated points once (keyed on Point::key()).
  bool memoize = false;
};

/// What a run did (memoisation accounting for tests/telemetry).
struct RunStats {
  std::size_t points = 0;     ///< space size
  std::size_t evaluated = 0;  ///< evaluate() calls actually made
  std::size_t memo_hits = 0;  ///< points served from a repeated key
  std::size_t cache_hits = 0; ///< points served from a persistent cache
                              ///< (server::run_cached; always 0 here)
};

/// Executes experiments over spaces. Stateless apart from its options, so
/// one Runner can serve many runs.
class Runner {
 public:
  Runner() = default;
  explicit Runner(RunOptions opt) : opt_(opt) {}

  [[nodiscard]] const RunOptions& options() const { return opt_; }

  /// Evaluates `exp` at every point of `space`; result i corresponds to
  /// `space.at(i)`. Bit-identical for any `threads` setting.
  template <typename Result>
  [[nodiscard]] std::vector<Result> run(const ParamSpace& space,
                                        const Experiment<Result>& exp,
                                        RunStats* stats = nullptr) const {
    const std::size_t n = space.size();
    const std::size_t chunk = opt_.chunk_size == 0 ? 1 : opt_.chunk_size;
    std::vector<Result> results(n);
    RunStats st;
    st.points = n;
    if (n == 0) {
      if (stats) *stats = st;
      return results;
    }

    // Chunk-keyed substreams: layout depends only on (n, chunk).
    util::Rng base(opt_.seed);
    const auto streams =
        base.jump_substreams(util::ThreadPool::chunk_count(n, chunk));
    const auto eval_at = [&](std::size_t i) {
      util::Rng rng = streams[i / chunk].fork(std::uint64_t(i % chunk));
      results[i] = exp.evaluate(space.at(i), rng);
    };

    if (!opt_.memoize) {
      util::ThreadPool::run_with(
          opt_.threads, n, chunk,
          [&](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) eval_at(i);
          });
      st.evaluated = n;
      if (stats) *stats = st;
      return results;
    }

    // Memoised: find the first occurrence of every distinct key serially
    // (cheap — no evaluation), evaluate only those in parallel (each at
    // its canonical RNG position), then copy results to the duplicates.
    std::unordered_map<std::string, std::size_t> first_of;
    std::vector<std::size_t> owner(n);
    std::vector<std::size_t> firsts;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] = first_of.try_emplace(space.at(i).key(), i);
      owner[i] = it->second;
      if (inserted) firsts.push_back(i);
    }
    util::ThreadPool::run_with(
        opt_.threads, firsts.size(), chunk,
        [&](std::size_t, std::size_t b, std::size_t e) {
          for (std::size_t k = b; k < e; ++k) eval_at(firsts[k]);
        });
    for (std::size_t i = 0; i < n; ++i) {
      if (owner[i] != i) results[i] = results[owner[i]];
    }
    st.evaluated = firsts.size();
    st.memo_hits = n - firsts.size();
    if (stats) *stats = st;
    return results;
  }

  /// run() + row assembly: `row_of(point, result)` produces the cells of
  /// each table row, in space order.
  template <typename Result, typename RowFn>
  [[nodiscard]] ResultTable table(const ParamSpace& space,
                                  const Experiment<Result>& exp,
                                  std::vector<std::string> columns,
                                  RowFn row_of,
                                  RunStats* stats = nullptr) const {
    const auto results = run(space, exp, stats);
    ResultTable t(std::move(columns));
    for (std::size_t i = 0; i < results.size(); ++i) {
      t.add_row(row_of(space.at(i), results[i]));
    }
    return t;
  }

 private:
  RunOptions opt_;
};

} // namespace mss::sweep
