"""Tests for bench_diff.py — runnable with pytest or plain unittest:

    python3 -m pytest scripts/test_bench_diff.py
    python3 -m unittest discover -s scripts -p 'test_*.py'
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402


def snapshot(benchmarks):
    return {"benchmarks": [
        {"name": name, "real_time": rt, "time_unit": "ns"}
        for name, rt in benchmarks.items()
    ]}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, data):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(data, f)
        return path

    def run_diff(self, base, cur, extra=()):
        return bench_diff.main([base, cur, *extra])

    def test_no_regression_passes(self):
        base = self.write("base.json", snapshot({"BM_X/dim:64": 100.0}))
        cur = self.write("cur.json", snapshot({"BM_X/dim:64": 110.0}))
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_regression_fails(self):
        base = self.write("base.json", snapshot({"BM_X/dim:64": 100.0}))
        cur = self.write("cur.json", snapshot({"BM_X/dim:64": 200.0}))
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_individual_missing_benchmark_is_tolerated(self):
        # One /dim: benchmark disappears but the family survives: families
        # evolve across revisions, so this stays a pass.
        base = self.write("base.json", snapshot({
            "BM_X/dim:64": 100.0, "BM_X/dim:128": 200.0}))
        cur = self.write("cur.json", snapshot({"BM_X/dim:64": 100.0}))
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_missing_family_fails_with_clear_message(self):
        # The whole /dim: family vanishes from the current snapshot: the
        # gate must fail loudly instead of passing vacuously — and via a
        # clean exit code, not a traceback.
        base = self.write("base.json", snapshot({
            "BM_X/dim:64": 100.0, "BM_Y/threads:2": 50.0}))
        cur = self.write("cur.json", snapshot({"BM_Y/threads:2": 50.0}))
        import contextlib
        import io
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = self.run_diff(base, cur)
        self.assertEqual(rc, 1)
        self.assertIn("family '/dim:'", err.getvalue())
        self.assertIn("none in the current snapshot", err.getvalue())

    def test_width_family_is_guarded_by_default(self):
        # The SIMD batch-width family is part of the default gate: a
        # regression in /width:N fails without any --families override.
        base = self.write("base.json", snapshot({
            "BM_LlgSimd/width:4/real_time": 100.0}))
        cur = self.write("cur.json", snapshot({
            "BM_LlgSimd/width:4/real_time": 200.0}))
        self.assertEqual(self.run_diff(base, cur), 1)
        # And a vanished /width: family fails loudly like the others.
        cur2 = self.write("cur2.json", snapshot({"BM_Other": 1.0}))
        import contextlib
        import io
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = self.run_diff(base, cur2)
        self.assertEqual(rc, 1)
        self.assertIn("family '/width:'", err.getvalue())

    def test_cache_family_is_guarded_by_default(self):
        # The persistent-result-cache family (warm vs cold sweep rerun) is
        # part of the default gate: a /cache:N regression fails without any
        # --families override, and a vanished family fails loudly.
        base = self.write("base.json", snapshot({
            "BM_SweepCachedRerun/cache:1/real_time": 100.0}))
        cur = self.write("cur.json", snapshot({
            "BM_SweepCachedRerun/cache:1/real_time": 300.0}))
        self.assertEqual(self.run_diff(base, cur), 1)
        cur2 = self.write("cur2.json", snapshot({"BM_Other": 1.0}))
        import contextlib
        import io
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = self.run_diff(base, cur2)
        self.assertEqual(rc, 1)
        self.assertIn("family '/cache:'", err.getvalue())

    def test_min_speedup_gate(self):
        # The intra-snapshot ratio assertion: width:4 must be >= RATIO
        # faster than width:1 in the *current* snapshot (hardware-neutral,
        # unlike absolute baseline numbers).
        base = self.write("base.json", snapshot({
            "BM_L/width:1": 100.0, "BM_L/width:4": 50.0}))
        ok = self.write("ok.json", snapshot({
            "BM_L/width:1": 100.0, "BM_L/width:4": 50.0}))
        self.assertEqual(self.run_diff(base, ok, extra=(
            "--min-speedup", "BM_L/width:1", "BM_L/width:4", "1.8")), 0)
        # Speedup collapsed to 1.25x: fails even though no per-benchmark
        # regression beyond tolerance occurred (width:1 also got slower).
        bad = self.write("bad.json", snapshot({
            "BM_L/width:1": 100.0, "BM_L/width:4": 80.0}))
        self.assertEqual(self.run_diff(base, bad, extra=(
            "--min-speedup", "BM_L/width:1", "BM_L/width:4", "1.8")), 1)
        # A named benchmark missing from the snapshot is a hard error, not
        # a silent pass.
        self.assertEqual(self.run_diff(base, ok, extra=(
            "--min-speedup", "BM_L/width:1", "BM_Missing", "1.8")), 1)

    def test_max_ratio_gate(self):
        # The scaling-cost dual of --min-speedup: the larger instance may
        # cost at most RATIO x the smaller one in the current snapshot.
        base = self.write("base.json", snapshot({
            "BM_W/rows:64": 100.0, "BM_W/rows:256": 400.0}))
        ok = self.write("ok.json", snapshot({
            "BM_W/rows:64": 100.0, "BM_W/rows:256": 400.0}))
        self.assertEqual(self.run_diff(base, ok, extra=(
            "--max-ratio", "BM_W/rows:256", "BM_W/rows:64", "4.5")), 0)
        # Scaling blew up to 6x: fails on the ratio alone — the tolerance
        # is widened so neither benchmark trips the per-benchmark gate.
        bad = self.write("bad.json", snapshot({
            "BM_W/rows:64": 110.0, "BM_W/rows:256": 660.0}))
        self.assertEqual(self.run_diff(base, bad, extra=(
            "--tolerance", "0.8",
            "--max-ratio", "BM_W/rows:256", "BM_W/rows:64", "4.5")), 1)
        # A named benchmark missing from the snapshot is a hard error.
        self.assertEqual(self.run_diff(base, ok, extra=(
            "--max-ratio", "BM_W/rows:256", "BM_Missing", "4.5")), 1)
        # /rows: is a default family: a vanished family still fails loudly.
        cur2 = self.write("cur2.json", snapshot({"BM_Other": 1.0}))
        import contextlib
        import io
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            rc = self.run_diff(base, cur2)
        self.assertEqual(rc, 1)
        self.assertIn("family '/rows:'", err.getvalue())

    def test_family_only_in_current_is_tolerated(self):
        # A brand-new family has no baseline yet: pass.
        base = self.write("base.json", snapshot({"BM_Y/threads:2": 50.0}))
        cur = self.write("cur.json", snapshot({
            "BM_Y/threads:2": 50.0, "BM_X/dim:64": 100.0}))
        self.assertEqual(self.run_diff(base, cur), 0)

    def test_unreadable_snapshot_is_a_clean_error(self):
        base = self.write("base.json", snapshot({"BM_X/dim:64": 100.0}))
        with self.assertRaises(SystemExit) as ctx:
            self.run_diff(base, os.path.join(self.tmp.name, "absent.json"))
        self.assertIn("cannot read snapshot", str(ctx.exception))

    def test_invalid_json_is_a_clean_error(self):
        base = self.write("base.json", snapshot({"BM_X/dim:64": 100.0}))
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w") as f:
            f.write("{not json")
        with self.assertRaises(SystemExit) as ctx:
            self.run_diff(base, bad)
        self.assertIn("not valid JSON", str(ctx.exception))

    def test_canonical_strips_run_options_only(self):
        # Run options go; the benchmark identity (including Args()-encoded
        # families like /threads:N) stays.
        self.assertEqual(
            bench_diff.canonical("BM_X/rows:64/min_time:2.000"),
            "BM_X/rows:64")
        self.assertEqual(
            bench_diff.canonical("BM_L/width:4/real_time"), "BM_L/width:4")
        self.assertEqual(
            bench_diff.canonical(
                "BM_Y/threads:2/iterations:50/manual_time"),
            "BM_Y/threads:2")
        self.assertEqual(
            bench_diff.canonical("BM_Z/wer:12/min_warmup_time:0.5"),
            "BM_Z/wer:12")
        self.assertEqual(bench_diff.canonical("BM_Plain"), "BM_Plain")

    def test_min_time_retune_does_not_drop_the_comparison(self):
        # Raising a benchmark's MinTime renames it in the raw JSON
        # (/min_time:2.000 appears); the canonicalised diff still matches
        # the baseline entry and still catches the regression.
        base = self.write("base.json", snapshot({"BM_W/rows:64": 100.0}))
        cur = self.write("cur.json", snapshot({
            "BM_W/rows:64/min_time:2.000": 200.0}))
        self.assertEqual(self.run_diff(base, cur), 1)
        # And the reverse direction (baseline carries the suffix).
        base2 = self.write("base2.json", snapshot({
            "BM_W/rows:64/min_time:2.000": 100.0}))
        cur2 = self.write("cur2.json", snapshot({"BM_W/rows:64": 105.0}))
        self.assertEqual(self.run_diff(base2, cur2), 0)

    def test_gate_names_are_canonicalised(self):
        # --min-speedup / --max-ratio names match regardless of whether the
        # caller or the snapshot carries run-option suffixes.
        base = self.write("base.json", snapshot({
            "BM_L/width:1/real_time": 100.0,
            "BM_L/width:4/real_time": 50.0}))
        cur = self.write("cur.json", snapshot({
            "BM_L/width:1/real_time": 100.0,
            "BM_L/width:4/real_time": 50.0}))
        self.assertEqual(self.run_diff(base, cur, extra=(
            "--min-speedup", "BM_L/width:1/min_time:1.000",
            "BM_L/width:4/real_time", "1.8")), 0)
        self.assertEqual(self.run_diff(base, cur, extra=(
            "--max-ratio", "BM_L/width:1", "BM_L/width:4/real_time",
            "2.5")), 0)

    def test_wer_family_is_guarded_by_default(self):
        # The write-error-rate family joins the default gate.
        base = self.write("base.json", snapshot({
            "BM_Wer/wer:12/real_time": 100.0}))
        cur = self.write("cur.json", snapshot({
            "BM_Wer/wer:12/real_time": 200.0}))
        self.assertEqual(self.run_diff(base, cur), 1)

    def test_unit_normalisation(self):
        # A unit change must not read as a 1000x regression.
        base = self.write("base.json", snapshot({"BM_X/dim:64": 100.0}))
        cur_data = {"benchmarks": [
            {"name": "BM_X/dim:64", "real_time": 0.1, "time_unit": "us"}]}
        cur = self.write("cur.json", cur_data)
        self.assertEqual(self.run_diff(base, cur), 0)


if __name__ == "__main__":
    unittest.main()
