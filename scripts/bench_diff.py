#!/usr/bin/env python3
"""Diff two google-benchmark JSON snapshots and fail on regressions.

    scripts/bench_diff.py BASELINE.json CURRENT.json [--tolerance 0.25]
                          [--families /dim: /threads: /width: /rows: /cache:]
                          [--min-speedup SLOW FAST RATIO]
                          [--max-ratio A B RATIO]

Compares `real_time` of every benchmark present in both snapshots whose
name contains one of the family markers (default: the /dim:N, /threads:N,
/width:N, /rows:N, /wer:N and /cache:N families — matrix-dimension,
thread-count, SIMD-batch-width, array-row, write-error-rate and
persistent-result-cache scaling respectively).

Benchmark names are canonicalised before any matching: google-benchmark
appends *run options* to the name (`/min_time:2.000`, `/real_time`,
`/iterations:N`, ...), so re-tuning a benchmark's MinTime silently
renames it — and a rename across snapshots would drop it from the
comparison and let the regression gate pass vacuously. Run-option
segments are stripped from snapshot keys and from --min-speedup /
--max-ratio gate names alike, so both `BM_X/rows:64` and
`BM_X/rows:64/min_time:2.000` address the same benchmark. Argument
families (`/threads:N`, `/rows:N`, ...) are never stripped.

`--min-speedup SLOW FAST RATIO` (repeatable) additionally asserts an
*intra-snapshot* ratio on the current snapshot:
current[SLOW] / current[FAST] >= RATIO. This is how absolute acceptance
criteria (e.g. "the SIMD width:4 kernel is >= 1.8x the width:1 kernel")
stay enforced on hardware whose absolute numbers differ from the committed
baseline's. `--max-ratio A B RATIO` (repeatable) is the scaling-cost dual:
current[A] / current[B] <= RATIO, bounding how much more a larger problem
instance may cost than a smaller one (e.g. "the rows:256 array write stays
within 4.5x the rows:64 one"). Exits 1 when any matched benchmark regressed
by more than the tolerance (relative to the baseline), 0 otherwise.

Individual benchmarks only present on one side are reported but never
fail the run (families evolve across revisions) — but an entire family
that exists in the baseline and is missing from the current snapshot
fails with a clear diagnostic: that shape of diff means the benchmark
binary dropped (or was built without) a whole scaling family, and a
silent skip would let the regression gate pass vacuously. Stdlib only.
"""

import argparse
import json
import sys


# real_time is normalised to nanoseconds so a revision that changes a
# benchmark's display unit cannot fake a six-orders-of-magnitude delta.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Run-option name segments appended by google-benchmark. `key:value`
# options carry a colon and a value; the timing-source markers are bare
# segments. `/threads:N` is deliberately NOT here: in this suite it is an
# Args()-encoded scaling family, and stripping it would fold a whole
# family onto one key.
_RUN_OPTION_PREFIXES = ("min_time:", "min_warmup_time:", "iterations:",
                        "repeats:", "repetitions:")
_RUN_OPTION_SEGMENTS = {"real_time", "process_time", "manual_time"}


def canonical(name):
    """Benchmark name with google-benchmark run-option suffixes removed."""
    return "/".join(
        seg for seg in name.split("/")
        if seg not in _RUN_OPTION_SEGMENTS
        and not seg.startswith(_RUN_OPTION_PREFIXES))


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise SystemExit(f"error: cannot read snapshot '{path}': {e.strerror}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"error: '{path}' is not valid JSON ({e})")
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        if unit not in _UNIT_NS:
            raise SystemExit(f"{path}: unknown time_unit '{unit}' "
                             f"for {bench['name']}")
        out[canonical(bench["name"])] = \
            float(bench["real_time"]) * _UNIT_NS[unit]
    return out


def missing_families(base, cur, families):
    """Family markers with baseline benchmarks but no current ones."""
    missing = []
    for fam in families:
        base_n = sum(1 for n in base if fam in n)
        cur_n = sum(1 for n in cur if fam in n)
        if base_n > 0 and cur_n == 0:
            missing.append((fam, base_n))
    return missing


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max allowed relative real_time growth (default 0.25)")
    ap.add_argument("--families", nargs="*",
                    default=["/dim:", "/threads:", "/width:", "/rows:",
                             "/wer:", "/cache:"],
                    help="benchmark-name substrings to compare")
    ap.add_argument("--min-speedup", nargs=3, action="append", default=[],
                    metavar=("SLOW", "FAST", "RATIO"),
                    help="require current[SLOW]/current[FAST] >= RATIO")
    ap.add_argument("--max-ratio", nargs=3, action="append", default=[],
                    metavar=("A", "B", "RATIO"),
                    help="require current[A]/current[B] <= RATIO")
    args = ap.parse_args(argv)

    base = load(args.baseline)
    cur = load(args.current)

    lost = missing_families(base, cur, args.families)
    if lost:
        for fam, count in lost:
            print(f"error: benchmark family '{fam}' has {count} benchmark(s) "
                  f"in the baseline but none in the current snapshot.",
                  file=sys.stderr)
        print("The benchmark binary dropped an entire scaling family — the "
              "regression gate cannot run vacuously. Restore the family or "
              "refresh the committed baseline deliberately.", file=sys.stderr)
        return 1

    def in_family(name):
        return any(f in name for f in args.families)

    matched = sorted(n for n in base if n in cur and in_family(n))
    only_base = sorted(n for n in base if n not in cur and in_family(n))
    only_cur = sorted(n for n in cur if n not in base and in_family(n))

    regressions = []
    print(f"{'benchmark':60s} {'baseline':>14s} {'current':>14s} {'delta':>8s}")
    for name in matched:
        b = base[name]
        c = cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        flag = " <-- REGRESSION" if delta > args.tolerance else ""
        print(f"{name:60s} {b:14.1f} {c:14.1f} {delta:+7.1%}{flag}  [ns]")
        if delta > args.tolerance:
            regressions.append((name, delta))

    for name in only_base:
        print(f"{name:60s} (baseline only — skipped)")
    for name in only_cur:
        print(f"{name:60s} (current only — no baseline yet)")

    speedup_failures = []
    for slow, fast, ratio in args.min_speedup:
        slow, fast = canonical(slow), canonical(fast)
        want = float(ratio)
        missing = [n for n in (slow, fast) if n not in cur]
        if missing:
            print(f"error: --min-speedup benchmark(s) missing from the "
                  f"current snapshot: {', '.join(missing)}", file=sys.stderr)
            return 1
        got = cur[slow] / cur[fast] if cur[fast] > 0 else 0.0
        flag = "" if got >= want else " <-- BELOW REQUIRED"
        print(f"speedup {slow} / {fast}: {got:.2f}x "
              f"(required >= {want:.2f}x){flag}")
        if got < want:
            speedup_failures.append((slow, fast, got, want))

    ratio_failures = []
    for a, b, ratio in args.max_ratio:
        a, b = canonical(a), canonical(b)
        want = float(ratio)
        missing = [n for n in (a, b) if n not in cur]
        if missing:
            print(f"error: --max-ratio benchmark(s) missing from the "
                  f"current snapshot: {', '.join(missing)}", file=sys.stderr)
            return 1
        got = cur[a] / cur[b] if cur[b] > 0 else float("inf")
        flag = "" if got <= want else " <-- ABOVE ALLOWED"
        print(f"ratio {a} / {b}: {got:.2f}x "
              f"(allowed <= {want:.2f}x){flag}")
        if got > want:
            ratio_failures.append((a, b, got, want))

    if not matched:
        print("warning: no benchmarks matched both snapshots", file=sys.stderr)
    if speedup_failures:
        for slow, fast, got, want in speedup_failures:
            print(f"error: {slow} is only {got:.2f}x {fast} "
                  f"(required >= {want:.2f}x)", file=sys.stderr)
        return 1
    if ratio_failures:
        for a, b, got, want in ratio_failures:
            print(f"error: {a} costs {got:.2f}x {b} "
                  f"(allowed <= {want:.2f}x)", file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nOK: no real_time regression beyond {args.tolerance:.0%} "
          f"across {len(matched)} matched benchmark(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
