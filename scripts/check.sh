#!/usr/bin/env bash
# One-command tier-1 verify: configure + build + ctest.
#   scripts/check.sh            # Release
#   BUILD_TYPE=Debug scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_TYPE="${BUILD_TYPE:-Release}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"
