#!/usr/bin/env bash
# Records a google-benchmark JSON snapshot of bench_perf_micro for the
# current revision:
#   scripts/bench_snapshot.sh              # all benchmarks
#   scripts/bench_snapshot.sh BM_Spice     # filtered
#   MSS_NATIVE=ON scripts/bench_snapshot.sh  # -march=native build
# Writes BENCH_<shortrev>.json in the repo root (gitignored scratch; copy a
# snapshot into bench/baselines/ to commit it as the revision's baseline)
# and prints the path. Diff real_time across revisions to track the perf
# trajectory.
#
# The snapshot context embeds the compiler version and the effective
# CMAKE_CXX_FLAGS (plus the MSS_NATIVE setting), so baselines recorded on
# different toolchains or ISA settings are distinguishable instead of
# silently comparable.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# MSS_NATIVE is always passed (default OFF): a stale ON in the CMake cache
# must never silently turn a "portable" snapshot into a -march=native one.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
      "-DMSS_NATIVE=${MSS_NATIVE:-OFF}" >/dev/null
cmake --build build -j"${JOBS}" --target bench_perf_micro >/dev/null

cache_var() {
  sed -n "s/^$1:[A-Z]*=//p" build/CMakeCache.txt | head -n1
}
CXX_BIN="$(cache_var CMAKE_CXX_COMPILER)"
COMPILER="$("${CXX_BIN}" --version 2>/dev/null | head -n1 || echo unknown)"
BUILD_TYPE="$(cache_var CMAKE_BUILD_TYPE)"
# Effective flags = user CMAKE_CXX_FLAGS + build-type flags + the directory
# compile options CMake cached for us (add_compile_options is invisible in
# CMAKE_CXX_FLAGS, and it carries the SIMD-relevant -ffp-contract=off /
# -fno-math-errno / -march=native).
FLAGS="$(cache_var CMAKE_CXX_FLAGS)"
FLAGS_BT="$(cache_var "CMAKE_CXX_FLAGS_$(echo "${BUILD_TYPE}" | tr '[:lower:]' '[:upper:]')")"
FLAGS_DIR="$(cache_var MSS_EFFECTIVE_CXX_OPTIONS)"
NATIVE="$(cache_var MSS_NATIVE)"

# google-benchmark's --benchmark_context parser rejects values containing
# '=' (e.g. -ffp-contract=off), so flag values spell it ':'; also squeeze
# the whitespace the empty CMAKE_CXX_FLAGS slot leaves behind.
FLAGS_ALL="$(echo "${FLAGS} ${FLAGS_BT} ${FLAGS_DIR}" | xargs)"
FLAGS_ALL="${FLAGS_ALL//=/:}"

REV="$(git rev-parse --short HEAD)"
OUT="BENCH_${REV}.json"
ARGS=(--benchmark_format=json
      "--benchmark_context=compiler=${COMPILER//=/:}"
      "--benchmark_context=cxx_flags=${FLAGS_ALL}"
      "--benchmark_context=mss_native=${NATIVE:-OFF}")
if [[ -n "${FILTER}" ]]; then
  ARGS+=("--benchmark_filter=${FILTER}")
fi
# Write to a temp file and rename only on success: a benchmark run that
# dies mid-way (OOM, ^C, bad filter) must not leave a truncated — or
# worse, stale-looking — BENCH_<rev>.json behind for bench_diff.py to
# compare against.
TMP="${OUT}.tmp"
trap 'rm -f "${TMP}"' EXIT
./build/bench_perf_micro "${ARGS[@]}" > "${TMP}"
mv "${TMP}" "${OUT}"
trap - EXIT
echo "${OUT}"
