#!/usr/bin/env bash
# Records a google-benchmark JSON snapshot of bench_perf_micro for the
# current revision:
#   scripts/bench_snapshot.sh              # all benchmarks
#   scripts/bench_snapshot.sh BM_Spice     # filtered
# Writes BENCH_<shortrev>.json in the repo root (gitignored scratch; copy a
# snapshot into bench/baselines/ to commit it as the revision's baseline)
# and prints the path. Diff real_time across revisions to track the perf
# trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j"${JOBS}" --target bench_perf_micro >/dev/null

REV="$(git rev-parse --short HEAD)"
OUT="BENCH_${REV}.json"
ARGS=(--benchmark_format=json)
if [[ -n "${FILTER}" ]]; then
  ARGS+=("--benchmark_filter=${FILTER}")
fi
./build/bench_perf_micro "${ARGS[@]}" > "${OUT}"
echo "${OUT}"
