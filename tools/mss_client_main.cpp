// mss-client: submit, monitor and fetch jobs on a running mss-server,
// over its unix socket (--socket PATH, the default transport) or TCP
// (--connect HOST:PORT — same protocol, works across machines).
//
//   mss-client [transport] experiments
//   mss-client [transport] submit EXPERIMENT [submit flags]
//   mss-client [transport] status JOB
//   mss-client [transport] cancel JOB
//   mss-client [transport] fetch JOB [--format console|csv|json]
//   mss-client [transport] run EXPERIMENT [submit flags] [--format ...]
//   mss-client [transport] shutdown
//
// submit flags: --seed N --priority N --chunk N --threads N
// `run` = submit + blocking fetch in one call.
//
// Resilience: connects fail fast (5 s deadline) instead of hanging on a
// dead endpoint; --timeout SEC sets both the connect and the per-RPC idle
// deadline; --retries N retries retryable failures (connection refused,
// reset, Busy, ShuttingDown) with exponential backoff — for `run`, the
// whole submit+fetch is retried and resumes from the server's cache.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH | --connect HOST:PORT]\n"
      "          [--timeout SEC] [--retries N] COMMAND ...\n"
      "  experiments                         list servable experiments\n"
      "  submit EXP [--seed N] [--priority N] [--chunk N] [--threads N]\n"
      "  status JOB                          one status snapshot\n"
      "  cancel JOB                          cooperative cancellation\n"
      "  fetch JOB [--format console|csv|json]  stream the result table\n"
      "  run EXP [submit flags] [--format F] submit + fetch\n"
      "  shutdown                            stop the server\n"
      "  --timeout SEC   connect + per-RPC idle deadline (default: 5 s\n"
      "                  connect, no RPC deadline; 0 = block forever)\n"
      "  --retries N     retry retryable failures N times with backoff\n"
      "                  (default 0; `run` retries resume from the cache)\n",
      argv0);
}

void print_status(const mss::server::JobStatus& s, FILE* out = stdout) {
  std::fprintf(out,
               "job %llu: %s  rows %llu/%llu  evaluated %llu  cache-hits "
               "%llu  memo-hits %llu  slices %llu\n",
               static_cast<unsigned long long>(s.id),
               mss::server::to_string(s.state),
               static_cast<unsigned long long>(s.rows_done),
               static_cast<unsigned long long>(s.total),
               static_cast<unsigned long long>(s.evaluated),
               static_cast<unsigned long long>(s.cache_hits),
               static_cast<unsigned long long>(s.memo_hits),
               static_cast<unsigned long long>(s.slices));
  if (!s.error.empty()) std::fprintf(out, "  error: %s\n", s.error.c_str());
}

void print_table(const mss::sweep::ResultTable& table,
                 const std::string& format) {
  if (format == "csv") {
    std::fputs(table.csv().c_str(), stdout);
  } else if (format == "json") {
    std::fputs(table.json().c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(table.str().c_str(), stdout);
  }
}

std::uint64_t parse_u64(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "not a number: %s\n", s);
    std::exit(2);
  }
  return v;
}

} // namespace

int main(int argc, char** argv) {
  std::string socket_path = "./mss-server.sock";
  std::string connect_address; // non-empty = TCP transport
  std::string format = "console";
  // Fail-fast by default: a dead endpoint errors after 5 s instead of
  // hanging the terminal. --timeout overrides both deadlines.
  mss::server::ClientOptions client_options;
  client_options.connect_timeout_ms = 5'000;
  mss::server::RetryOptions retry;
  retry.attempts = 1; // --retries N => N extra attempts
  mss::server::SubmitOptions submit;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--connect") {
      connect_address = next();
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--timeout") {
      const int ms = int(std::strtol(next(), nullptr, 10)) * 1000;
      client_options.connect_timeout_ms = ms;
      client_options.io_timeout_ms = ms;
    } else if (arg == "--retries") {
      retry.attempts = 1 + int(parse_u64(next()));
    } else if (arg == "--seed") {
      submit.seed = parse_u64(next());
    } else if (arg == "--priority") {
      submit.priority = std::int32_t(std::strtol(next(), nullptr, 10));
    } else if (arg == "--chunk") {
      submit.chunk_size = std::uint32_t(parse_u64(next()));
    } else if (arg == "--threads") {
      submit.threads = std::uint32_t(parse_u64(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    usage(argv[0]);
    return 2;
  }
  const std::string& command = positional[0];

  const auto endpoint = connect_address.empty()
                            ? mss::server::Endpoint::unix_socket(socket_path)
                            : mss::server::Endpoint::tcp(connect_address);
  retry.on_retry = [](int attempt, const std::string& why, int sleep_ms) {
    std::fprintf(stderr, "mss-client: attempt %d failed (%s), retrying in %d ms\n",
                 attempt, why.c_str(), sleep_ms);
  };

  try {
    if (command == "run") {
      if (positional.size() < 2) {
        usage(argv[0]);
        return 2;
      }
      // The whole submit+fetch retries as a unit; completed rows resume
      // from the server's first-write-wins cache, so a mid-fetch
      // reconnect never recomputes or reorders anything.
      const auto result = mss::server::run_with_retry(
          endpoint, positional[1], submit, client_options, retry);
      print_table(result.table, format);
      print_status(result.status, stderr); // keep csv/json on stdout clean
      return result.status.state == mss::server::JobState::Done ? 0 : 1;
    }

    mss::server::Client client =
        mss::server::connect_with_retry(endpoint, client_options, retry);

    if (command == "experiments") {
      for (const auto& exp : client.experiments()) {
        std::printf("%-18s v%u  %llu default points  %s\n", exp.id.c_str(),
                    exp.version,
                    static_cast<unsigned long long>(exp.default_space_size),
                    exp.description.c_str());
      }
      return 0;
    }
    if (command == "shutdown") {
      client.shutdown_server();
      std::printf("server stopping\n");
      return 0;
    }
    if (positional.size() < 2) {
      usage(argv[0]);
      return 2;
    }

    if (command == "submit") {
      const std::uint64_t id = client.submit(positional[1], submit);
      std::printf("%llu\n", static_cast<unsigned long long>(id));
      return 0;
    }
    if (command == "status") {
      print_status(client.status(parse_u64(positional[1].c_str())));
      return 0;
    }
    if (command == "cancel") {
      print_status(client.cancel(parse_u64(positional[1].c_str())));
      return 0;
    }
    if (command == "fetch") {
      const std::uint64_t id = parse_u64(positional[1].c_str());
      const auto result = client.fetch(id);
      print_table(result.table, format);
      print_status(result.status, stderr); // keep csv/json on stdout clean
      return result.status.state == mss::server::JobState::Done ? 0 : 1;
    }

    usage(argv[0]);
    return 2;
  } catch (const mss::server::ServerError& e) {
    std::fprintf(stderr, "server error %u: %s\n", unsigned(e.code()),
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
