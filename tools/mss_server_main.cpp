// mss-server: the simulation-as-a-service daemon. Binds a local unix
// socket, serves the builtin experiment registry (nvsim.explore,
// magpie.scenario, demo.mc_tail) and persists every evaluated row to the
// result cache, so a killed/restarted server resumes half-finished sweeps
// from disk. Stop with SIGINT/SIGTERM or `mss-client shutdown`.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--listen HOST:PORT] [--cache "
               "PATH]\n"
               "          [--cache-max-bytes N] [--compact-cache] "
               "[--compact-on-start]\n"
               "          [--io-timeout SEC] [--max-conns N]\n"
               "          [--threads N] [--chunk N] [--stripe N]\n"
               "  --socket PATH   unix socket to listen on "
               "(default ./mss-server.sock)\n"
               "  --listen H:P    additionally listen on TCP (\":0\" = "
               "loopback,\n"
               "                  ephemeral port; the actual endpoint is "
               "printed).\n"
               "                  No authentication: bind loopback unless "
               "the\n"
               "                  network is trusted\n"
               "  --cache PATH    persistent result cache file; omit for a\n"
               "                  purely in-memory cache (no cross-run "
               "resume)\n"
               "  --cache-max-bytes N  cache file size cap; appends past "
               "it\n"
               "                  compact first, then go memory-only "
               "(default: unlimited)\n"
               "  --compact-cache rewrite the cache dropping duplicate "
               "records,\n"
               "                  print the stats and exit (needs --cache)\n"
               "  --compact-on-start  run the same compaction before "
               "serving\n"
               "  --io-timeout S  per-connection idle I/O timeout in "
               "seconds; a peer\n"
               "                  making no progress that long is evicted "
               "(default 120,\n"
               "                  0 = never)\n"
               "  --max-conns N   live-connection cap; excess clients get "
               "a retryable\n"
               "                  Busy error (default 256, 0 = unlimited)\n"
               "  --threads N     job thread policy: 0 = shared pool "
               "(default), 1 = serial\n"
               "  --chunk N       default sweep chunk size (default 1)\n"
               "  --stripe N      chunks per streaming/cancellation/"
               "scheduling stripe\n"
               "                  (default 8)\n",
               argv0);
}

} // namespace

int main(int argc, char** argv) {
  mss::server::ServerOptions options;
  options.socket_path = "./mss-server.sock";
  bool compact_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--listen") {
      options.listen_address = next();
    } else if (arg == "--cache") {
      options.cache_path = next();
    } else if (arg == "--cache-max-bytes") {
      options.cache_max_bytes = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--compact-cache") {
      compact_only = true;
    } else if (arg == "--compact-on-start") {
      options.compact_cache_on_start = true;
    } else if (arg == "--io-timeout") {
      options.io_timeout_ms = int(std::strtol(next(), nullptr, 10)) * 1000;
    } else if (arg == "--max-conns") {
      options.max_conns = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--chunk") {
      options.chunk_size = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--stripe") {
      options.stripe_chunks = std::strtoul(next(), nullptr, 10);
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  if (compact_only) {
    // Standalone maintenance mode: compact the cache file and exit without
    // binding any socket — safe to run while no server owns the file.
    if (options.cache_path.empty()) {
      std::fprintf(stderr, "mss-server: --compact-cache needs --cache PATH\n");
      return 2;
    }
    try {
      mss::server::ResultCache cache(options.cache_path);
      const auto stats = cache.compact();
      std::fprintf(stderr,
                   "mss-server: compacted %s: %zu -> %zu bytes, %zu -> %zu "
                   "records\n",
                   options.cache_path.c_str(), stats.bytes_before,
                   stats.bytes_after, stats.records_before,
                   stats.records_after);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mss-server: compact failed: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  try {
    mss::server::Server server(options);
    const auto& cache = server.cache();
    std::fprintf(stderr, "mss-server: listening on %s\n",
                 server.socket_path().c_str());
    if (!server.tcp_address().empty()) {
      // The tcp:// line is machine-parseable: tests (and scripts) read the
      // ephemeral port back from it when --listen used port 0.
      std::fprintf(stderr, "mss-server: listening on tcp://%s\n",
                   server.tcp_address().c_str());
    }
    if (!cache.path().empty()) {
      std::fprintf(stderr,
                   "mss-server: cache %s (%zu rows replayed, %zu bytes of "
                   "torn tail discarded)\n",
                   cache.path().c_str(), cache.replayed(),
                   cache.discarded_bytes());
    }
    server.start();
    while (!g_stop.load() && !server.stopping()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.request_stop();
    server.wait();
    std::fprintf(stderr, "mss-server: stopped (%zu cached rows)\n",
                 cache.entries());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mss-server: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
