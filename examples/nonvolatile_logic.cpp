// Non-volatile logic: normally-off computing with MSS flip-flops.
//
// The paper's Section II analyses "single bit cells and flip-flops based
// on MRAM" at circuit level. This example uses the SPICE engine to study a
// power-gated pipeline stage protected by NVFFs:
//   * store/restore energy and delay of the flip-flop,
//   * the break-even sleep time against leaky retention flops,
//   * a sweep over latch sizing showing the store-energy / restore-speed
//     trade-off.
//
//   $ ./nonvolatile_logic
#include <cstdio>

#include "cells/nvff.hpp"
#include "core/pdk.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mss;
  using util::TextTable;

  const auto pdk = core::Pdk::mss45();
  std::printf("=== Normally-off computing with MSS non-volatile flip-flops "
              "===\n\n");

  // Baseline characterisation, both data polarities.
  const cells::Nvff ff(pdk);
  const auto r1 = ff.characterize(true);
  const auto r0 = ff.characterize(false);
  std::printf("NVFF check: store/restore bit=1 %s/%s, bit=0 %s/%s\n",
              r1.store_ok ? "ok" : "FAIL", r1.restore_ok ? "ok" : "FAIL",
              r0.store_ok ? "ok" : "FAIL", r0.restore_ok ? "ok" : "FAIL");
  std::printf("store %.2f pJ, restore %.2f pJ in %.2f ns\n\n",
              r1.e_store / util::kPj, r1.e_restore / util::kPj,
              r1.t_restore / util::kNs);

  // Break-even sleep time vs a retention flop leaking through sleep.
  // A retention flop at 45nm leaks ~2 nW in the balloon latch.
  const double p_retention_leak = 2e-9; // W
  const double e_cycle = r1.e_store + r1.e_restore;
  const double t_breakeven = e_cycle / p_retention_leak;
  std::printf("break-even sleep: %.2f pJ per NVFF power cycle vs %.1f nW "
              "retention leakage -> worth power-gating for sleeps > %.1f ms\n\n",
              e_cycle / util::kPj, p_retention_leak / 1e-9,
              t_breakeven / 1e-3);

  // Sizing sweep: bigger latch writes the shadow MTJs faster (more store
  // current) but costs area and restore energy.
  std::printf("latch sizing sweep (store phase fixed at 10 ns):\n");
  TextTable t({"latch W/Wmin", "store ok", "E_store (pJ)", "t_restore (ns)",
               "E_restore (pJ)"});
  for (double w : {6.0, 10.0, 14.0, 18.0}) {
    cells::NvffOptions opt;
    opt.latch_width_factor = w;
    const cells::Nvff sized(pdk, opt);
    const auto r = sized.characterize(true);
    t.add_row({TextTable::num(w, 0), r.store_ok && r.restore_ok ? "yes" : "NO",
               TextTable::num(r.e_store / util::kPj, 2),
               TextTable::num(r.t_restore / util::kNs, 2),
               TextTable::num(r.e_restore / util::kPj, 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("The MSS shadow pair makes any pipeline stage instantly "
              "power-gateable — the \"normally-off\" IoT operating mode the "
              "paper targets.\n");
  return 0;
}
