// Memory design exploration with VAET-STT — the Section III use case.
//
// Task: design a 4 Mb STT-MRAM scratchpad at 45 nm with a 1e-12 access
// error budget. The example walks the full variation-aware flow:
//   1. explore array organisations (NVSim role) under constraints,
//   2. quantify the variation-aware latency distributions (Table-1 style),
//   3. pick the write timing margin for the WER target (Fig. 7 style),
//   4. decide between raw margining and ECC (Fig. 8 style),
//   5. check the read-disturb exposure of the chosen read period (Fig. 9).
//
//   $ ./memory_design_exploration
#include <cstdio>

#include "nvsim/optimizer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "vaet/ecc.hpp"
#include "vaet/estimator.hpp"

int main() {
  using namespace mss;
  using util::TextTable;
  using util::kNs;
  using util::kPj;

  const auto pdk = core::Pdk::mss45();
  constexpr std::size_t kCapacityBits = 4u << 20;
  constexpr std::size_t kWordBits = 256;
  constexpr double kErrorBudget = 1e-12;

  std::printf("=== Designing a 4 Mb MSS scratchpad (45 nm, %g error "
              "budget) ===\n\n", kErrorBudget);

  // [1] organisation exploration under a read-latency constraint — a
  // declarative sweep evaluated in parallel through sweep::Runner.
  nvsim::ExploreOptions eopt;
  eopt.constraints.max_read_latency = 3.0 * 1e-9;
  eopt.mats = {1, 2, 4};
  const auto candidates = nvsim::explore(pdk, kCapacityBits, kWordBits,
                                         nvsim::Goal::ReadEdp, eopt);
  std::printf("[1] %zu feasible organisations; top three by read EDP:\n",
              candidates.size());
  TextTable orgs({"mats x rows x cols", "read (ns)", "write (ns)",
                  "area (mm2)", "leakage (mW)"});
  for (std::size_t i = 0; i < candidates.size() && i < 3; ++i) {
    const auto& c = candidates[i];
    orgs.add_row({std::to_string(c.mats) + "x" + std::to_string(c.org.rows) +
                      "x" + std::to_string(c.org.cols),
                  TextTable::num(c.estimate.read_latency / kNs, 2),
                  TextTable::num(c.estimate.write_latency / kNs, 2),
                  TextTable::num(c.estimate.area / util::kMm2, 3),
                  TextTable::num(c.estimate.leakage_power / util::kMw, 3)});
  }
  std::printf("%s\n", orgs.str().c_str());
  const auto best = candidates.front();

  // [2] variation-aware distributions for the chosen organisation.
  vaet::VaetOptions vopt;
  vopt.mc_samples = 2000;
  const vaet::VaetStt vaet(pdk, best.org, vopt);
  util::Rng rng(2024);
  const auto dist = vaet.monte_carlo(rng);
  std::printf("[2] variation-aware behaviour (chosen organisation):\n");
  TextTable t1({"metric", "nominal", "mu", "sigma", "p99"});
  t1.add_row({"write latency (ns)", TextTable::num(dist.write_latency.nominal / kNs, 2),
              TextTable::num(dist.write_latency.mean / kNs, 2),
              TextTable::num(dist.write_latency.sigma / kNs, 2),
              TextTable::num(dist.write_latency.p99 / kNs, 2)});
  t1.add_row({"read latency (ns)", TextTable::num(dist.read_latency.nominal / kNs, 2),
              TextTable::num(dist.read_latency.mean / kNs, 2),
              TextTable::num(dist.read_latency.sigma / kNs, 2),
              TextTable::num(dist.read_latency.p99 / kNs, 2)});
  t1.add_row({"write energy (pJ)", TextTable::num(dist.write_energy.nominal / kPj, 1),
              TextTable::num(dist.write_energy.mean / kPj, 1),
              TextTable::num(dist.write_energy.sigma / kPj, 1),
              TextTable::num(dist.write_energy.p99 / kPj, 1)});
  std::printf("%s\n", t1.str().c_str());

  // [3] raw write margin for the target.
  const double t_raw = vaet.write_latency_for_wer(kErrorBudget);
  std::printf("[3] raw write margin for %.0e WER: %.2f ns "
              "(%.1fx the nominal)\n\n", kErrorBudget, t_raw / kNs,
              t_raw / dist.write_latency.nominal);

  // [4] ECC trade-off.
  std::printf("[4] ECC alternative:\n");
  TextTable t2({"scheme", "write latency (ns)", "storage overhead"});
  const auto word_bits = static_cast<unsigned>(best.org.word_bits);
  for (unsigned t = 0; t <= 3; ++t) {
    vaet::EccScheme scheme;
    scheme.data_bits = word_bits;
    scheme.t_correct = t;
    const double lat = vaet.write_latency_with_ecc(kErrorBudget, t);
    t2.add_row({t == 0 ? "no ECC" : ("BCH t=" + std::to_string(t)),
                TextTable::num(lat / kNs, 2),
                TextTable::num(100.0 * scheme.overhead(), 1) + "%"});
  }
  std::printf("%s", t2.str().c_str());
  const double t_ecc1 = vaet.write_latency_with_ecc(kErrorBudget, 1);
  std::printf("-> single-error correction buys %.0f%% write-latency "
              "reduction for %.1f%% extra bits.\n\n",
              100.0 * (1.0 - t_ecc1 / t_raw),
              100.0 * vaet::EccScheme{word_bits, 1}.overhead());

  // [5] read-disturb check of the margined read period.
  const double t_read = vaet.read_latency_for_rer(kErrorBudget);
  const double p_disturb = vaet.read_disturb_probability(t_read);
  std::printf("[5] read period for %.0e RER: %.2f ns -> disturb "
              "probability %.2e per access (%s the error budget)\n",
              kErrorBudget, t_read / kNs, p_disturb,
              p_disturb < kErrorBudget ? "within" : "EXCEEDS");
  if (p_disturb >= kErrorBudget) {
    std::printf("    -> the conflicting RER/disturb requirements (paper, "
                "Fig. 9) would force a shorter read with ECC cover.\n");
  }
  return 0;
}
