// IoT sensor node: the paper's motivating application.
//
// An autonomous battery-operated node built entirely on the MSS baseline
// technology:
//   * an MSS *sensor* measures an out-of-plane magnetic field,
//   * an MSS-based *programmable current source* biases the sensor,
//   * samples are logged into an MSS *memory* array (retention relaxed to
//     one week — the diameter knob — to cut write energy),
//   * an MSS *oscillator* provides the RF carrier to radio the data out,
//   * NVFF state retention lets the MCU power-gate completely between
//     samples (normally-off computing).
//
// The example sizes every block, runs a day-long duty-cycle simulation
// (analytically) and prints the energy budget per sample and per day.
//
//   $ ./iot_sensor_node
#include <cmath>
#include <cstdio>

#include "cells/current_source.hpp"
#include "cells/nvff.hpp"
#include "core/mss_stack.hpp"
#include "core/pdk.hpp"
#include "core/retention.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace mss;
  using util::TextTable;

  const auto pdk = core::Pdk::mss45();
  std::printf("=== MSS-based IoT sensor node (all functions, one stack) "
              "===\n\n");

  // --- sensing chain --------------------------------------------------------
  const auto sensor_dev = core::MssStack::make_sensor(pdk.mtj);
  const auto& sensor = sensor_dev.sensor();
  const cells::CurrentSource bias_source(pdk);
  const auto bias = bias_source.characterize();
  const double i_bias = bias.levels[1]; // mid programming level
  const double h_signal = 0.2 * sensor.characteristics().linear_range_am;
  const double v_out = sensor.output_voltage(h_signal, i_bias);
  std::printf("sensor: %s\n", sensor_dev.describe().c_str());
  std::printf("bias:   %.1f uA from the programmable source "
              "(levels %.1f..%.1f uA)\n",
              i_bias / util::kUa, bias.levels.back() / util::kUa,
              bias.levels.front() / util::kUa);
  std::printf("signal: %.2f kOe -> %.1f mV at the ADC input\n\n",
              h_signal / util::kKiloOersted, v_out / 1e-3);

  // --- log memory: retention relaxed to one week ---------------------------
  const core::RetentionDesigner designer(pdk.mtj, pdk.write_overdrive);
  const auto log_cell = designer.design(7.0 / 365.25);
  const auto archive_cell = designer.design(10.0);
  std::printf("log memory cell  (1 week):  d=%.1f nm, I_w %.1f uA, "
              "E_w %.0f fJ/bit\n",
              log_cell.diameter / util::kNm, log_cell.write_current / util::kUa,
              log_cell.write_energy / util::kFj);
  std::printf("archive cell     (10 years): d=%.1f nm, I_w %.1f uA, "
              "E_w %.0f fJ/bit  (%.0f%% more)\n\n",
              archive_cell.diameter / util::kNm,
              archive_cell.write_current / util::kUa,
              archive_cell.write_energy / util::kFj,
              100.0 * (archive_cell.write_energy / log_cell.write_energy - 1.0));

  // --- radio ---------------------------------------------------------------
  const auto osc = core::MssStack::make_oscillator(pdk.mtj);
  const double i_osc = 2.5 * osc.oscillator().threshold_current();
  // The STO is only the carrier; the PA dominates the radio budget.
  const double p_radio = i_osc * 0.4 + 5e-3; // STO branch + PA [W]
  std::printf("radio: STO carrier %.2f GHz at %.1f uA DC\n\n",
              osc.oscillator().frequency(i_osc) / util::kGhz,
              i_osc / util::kUa);

  // --- normally-off MCU state ----------------------------------------------
  const cells::Nvff nvff(pdk);
  const auto ff = nvff.characterize(true);
  std::printf("state retention: NVFF store %.2f pJ / restore %.2f pJ "
              "(%d-bit MCU state: %.1f pJ per power cycle)\n\n",
              ff.e_store / util::kPj, ff.e_restore / util::kPj, 64,
              64.0 * (ff.e_store + ff.e_restore) / util::kPj);

  // --- duty-cycle energy budget ---------------------------------------------
  const double sample_period = 10.0;       // s
  const double t_active = 2e-3;            // s awake per sample
  const double p_active_cmos = 3e-3;       // W, MCU active
  const double samples_per_word = 4.0;     // 16-bit samples into 64-bit words
  const double e_sample =
      p_active_cmos * t_active                     // MCU awake window
      + i_bias * 0.4 * 1e-3                        // sensor biased for 1 ms
      + 64.0 * log_cell.write_energy / samples_per_word // log write share
      + p_radio * 5e-3 / 60.0                      // radio share (5 ms/min)
      + 64.0 * (ff.e_store + ff.e_restore);        // power gating
  const double e_day = e_sample * (86400.0 / sample_period);

  TextTable t({"component", "energy per sample (nJ)"});
  t.add_row({"MCU active window", TextTable::num(p_active_cmos * t_active / 1e-9, 1)});
  t.add_row({"sensor bias", TextTable::num(i_bias * 0.4 * 1e-3 / 1e-9, 2)});
  t.add_row({"MRAM log write", TextTable::num(64.0 * log_cell.write_energy / samples_per_word / 1e-9, 3)});
  t.add_row({"radio share", TextTable::num(p_radio * 5e-3 / 60.0 / 1e-9, 2)});
  t.add_row({"NVFF power gating", TextTable::num(64.0 * (ff.e_store + ff.e_restore) / 1e-9, 3)});
  std::printf("%s\n", t.str().c_str());

  const double days = 3.0 * 3600.0 / e_day;
  if (days > 3650.0) {
    std::printf("per-sample %.1f uJ -> %.2f J/day; a 3 Wh coin cell is no "
                "longer the limit (>10 years): the battery's own shelf life "
                "bounds the node, thanks to zero standby leakage in the MSS "
                "blocks\n",
                e_sample / 1e-6, e_day);
  } else {
    std::printf("per-sample %.1f uJ -> %.2f J/day; a 3 Wh coin cell lasts "
                "%.0f days with zero standby leakage in the MSS blocks\n",
                e_sample / 1e-6, e_day, days);
  }
  std::printf("(the non-volatility is the point: between samples the node "
              "draws *no* state-retention power)\n");
  return 0;
}
