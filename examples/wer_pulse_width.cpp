// Write-error rate vs pulse width — the rare-event reliability sweep.
//
// Question: how short can the write pulse get before a 1 Mb MSS array
// stops meeting a 1e-12 write-error budget? Brute-force Monte-Carlo tops
// out around 1e-4; this example runs the WerScenario family, which
// overlays three engines at every (pulse, voltage, temperature) point:
//  * the behavioural closed form (thermal incubation),
//  * the analytic switching-current-spread deep tail (math::special
//    erfcx/log_erfc path) — valid to 1e-15 and beyond,
//  * the importance-sampled LLGS estimator (threshold-tilted proposal +
//    defensive mixture) with its relative-error bound — the trajectory-
//    level check on the closed forms, ~1e10x cheaper than naive MC at
//    equal error in the deep tail.
//
// The sweep table lands on stdout and in wer_pulse_width.csv / .json for
// re-plotting.
//
//   $ ./wer_pulse_width [trajectories-per-point]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compact_model.hpp"
#include "core/wer_scenario.hpp"

int main(int argc, char** argv) {
  using namespace mss;

  // 0 trajectories = analytic-only sweep; pass e.g. 2000 for the IS-MC
  // overlay (a few seconds per point on one core).
  const std::size_t trajectories =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  std::printf("=== WER vs pulse width: analytic tails + IS-MC overlay "
              "===\n\n");

  core::WerScenarioConfig cfg;
  cfg.direction = core::WriteDirection::ToAntiparallel; // the hard write
  cfg.pulse_widths = {3e-9, 4e-9, 5e-9, 7e-9, 10e-9};
  cfg.voltages = {0.45};
  cfg.temperatures = {300.0, 350.0};
  cfg.sigma_ic_rel = 0.2; // device-to-device switching-current spread
  cfg.trajectories = trajectories;

  const core::WerScenario scenario(cfg);
  auto table = scenario.table();
  std::printf("%s\n", table.str(4).c_str());
  std::printf(
      "Each closed form owns a regime: the behavioural column models the\n"
      "thermal-incubation floor (dominant at short pulses), the analytic\n"
      "column the switching-current-spread tail (dominant once the floor\n"
      "decays); wer_mc samples the full trajectory physics and arbitrates\n"
      "between them (rel_err_mc / ess_mc gauge its resolution at each\n"
      "point).\n\n");

  // Where does each temperature corner cross the 1e-12 budget? The
  // analytic tail answers directly (the MC overlay validates it where the
  // two regimes overlap).
  const core::MtjCompactModel model(cfg.device);
  std::printf("pulse width for WER = 1e-12 at sigma_ic = %.2g:\n",
              cfg.sigma_ic_rel);
  for (double temp : cfg.temperatures) {
    core::MtjParams dev = cfg.device;
    dev.temperature = temp;
    const core::MtjCompactModel corner(dev);
    const double i =
        cfg.voltages[0] /
        corner.resistance(core::MtjState::Parallel, cfg.voltages[0]);
    const double t = corner.pulse_width_for_wer_ic_spread(
        cfg.direction, i, 1e-12, cfg.sigma_ic_rel);
    std::printf("  T = %3.0f K: %.2f ns (drive %.3g A)\n", temp, t * 1e9, i);
  }

  if (!table.write_csv("wer_pulse_width.csv") ||
      !table.write_json("wer_pulse_width.json")) {
    std::fprintf(stderr, "warning: could not write output files\n");
    return 1;
  }
  std::printf("\nwrote wer_pulse_width.csv / wer_pulse_width.json\n");
  return 0;
}
