// Quickstart: the Multifunctional Standardized Stack in five minutes.
//
// One baseline MTJ stack, three functions — memory, RF oscillator and
// magnetic sensor — selected by pillar diameter and permanent-magnet bias.
// This example builds all three from the same recipe and prints their
// headline figures of merit.
//
//   $ ./quickstart
#include <cstdio>

#include "core/mss_stack.hpp"
#include "core/pdk.hpp"
#include "util/units.hpp"

int main() {
  using namespace mss;

  // The PDK bundles the baseline stack recipe for a technology node.
  const auto pdk = core::Pdk::mss45();
  std::printf("PDK: %s\n\n", pdk.describe().c_str());

  // --- 1. Memory mode: a bistable non-volatile bit -------------------------
  const auto memory = core::MssStack::make_memory(pdk.mtj);
  const auto& mem = memory.memory();
  const double ic0 =
      mem.critical_current(core::WriteDirection::ToAntiparallel);
  std::printf("[memory]     %s\n", memory.describe().c_str());
  std::printf("  R_P = %.1f kOhm, R_AP = %.1f kOhm (TMR %.0f %%)\n",
              mem.resistance(core::MtjState::Parallel) / 1e3,
              mem.resistance(core::MtjState::Antiparallel) / 1e3,
              100.0 * mem.tmr(0.0));
  std::printf("  write: Ic0 %.1f uA, t_sw %.1f ns @2x overdrive, "
              "retention %.0f years\n\n",
              ic0 / util::kUa,
              mem.switching_time(core::WriteDirection::ToAntiparallel,
                                 2.0 * ic0) / util::kNs,
              mem.retention_time() / (365.25 * 24 * 3600));

  // --- 2. Oscillator mode: add magnets for ~Hk/2 in-plane bias -------------
  const auto osc = core::MssStack::make_oscillator(pdk.mtj);
  const auto& sto = osc.oscillator();
  const double i_osc = 2.0 * sto.threshold_current();
  std::printf("[oscillator] %s\n", osc.describe().c_str());
  std::printf("  f = %.2f GHz @2x threshold, output %.1f dBm, linewidth "
              "%.1f MHz\n\n",
              sto.frequency(i_osc) / util::kGhz,
              sto.output_power_dbm(i_osc), sto.linewidth(i_osc) / util::kMhz);

  // --- 3. Sensor mode: larger pillar, bias slightly above Hk ---------------
  const auto sensor_dev = core::MssStack::make_sensor(pdk.mtj);
  const auto& sensor = sensor_dev.sensor();
  const auto c = sensor.characteristics();
  std::printf("[sensor]     %s\n", sensor_dev.describe().c_str());
  std::printf("  sensitivity %.2f Ohm/Oe over +-%.2f kOe, NEF @1kHz "
              "%.2f mOe/sqrt(Hz)\n\n",
              c.sensitivity_ohm_per_am * util::kOersted,
              c.linear_range_am / util::kKiloOersted,
              1e3 * sensor.noise_equivalent_field(1e3, 20e-6) / util::kOersted);

  std::printf("Same stack, three functions — the MSS idea in code.\n");
  return 0;
}
