// Hybrid-memory system exploration with MAGPIE — the Section IV use case.
//
// Question: should an IoT gateway SoC (big.LITTLE) move its L2 caches to
// MSS STT-MRAM? The example runs a custom kernel mix through all four
// scenarios — one kernel x scenario crossed sweep, evaluated in parallel
// by sweep::Runner — and prints the recommendation with the supporting
// numbers — exactly the "script-oriented" design-space exploration the
// paper describes MAGPIE providing.
//
//   $ ./hybrid_system_exploration
#include <cstdio>
#include <string>
#include <vector>

#include "magpie/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace mss;
  using util::TextTable;

  std::printf("=== MAGPIE hybrid-memory exploration: IoT gateway kernel "
              "mix ===\n\n");

  const auto pdk = core::Pdk::mss45();
  // Gateway mix: sensing preprocessing (streaming), local inference
  // (capacity hungry), video encode (write heavy).
  std::vector<magpie::KernelParams> mix;
  for (const char* name : {"streamcluster", "bodytrack", "x264"}) {
    mix.push_back(magpie::kernel_by_name(name));
  }

  // The whole mix is one crossed sweep: results are kernel-major with the
  // four scenarios in presentation order.
  const auto runs = magpie::run_scenario_sweep(mix, pdk);
  const auto scenarios = magpie::all_scenarios();

  struct Tally {
    double time = 0.0;
    double energy = 0.0;
  };
  std::vector<Tally> tally(scenarios.size());

  TextTable per_kernel({"kernel", "scenario", "exec (ms)", "energy (mJ)",
                        "EDP ratio vs SRAM"});
  for (std::size_t k = 0; k < mix.size(); ++k) {
    const auto* base = &runs[k * scenarios.size()];
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const auto& run = base[i];
      tally[i].time += run.activity.exec_time;
      tally[i].energy += run.energy.total();
      const auto m = magpie::normalize(base[0], run);
      per_kernel.add_row({mix[k].name, magpie::to_string(run.scenario),
                          TextTable::num(run.activity.exec_time / 1e-3, 3),
                          TextTable::num(run.energy.total() / 1e-3, 3),
                          TextTable::num(m.edp_ratio, 3)});
    }
  }
  std::printf("%s\n", per_kernel.str().c_str());

  std::printf("Mix totals:\n");
  TextTable totals({"scenario", "time (ms)", "energy (mJ)", "EDP (uJs)",
                    "vs Full-SRAM"});
  const double ref_edp = tally[0].time * tally[0].energy;
  std::size_t best = 0;
  double best_edp = 1e300;
  for (std::size_t i = 0; i < tally.size(); ++i) {
    const double edp = tally[i].time * tally[i].energy;
    if (edp < best_edp) {
      best_edp = edp;
      best = i;
    }
    totals.add_row({magpie::to_string(scenarios[i]),
                    TextTable::num(tally[i].time / 1e-3, 3),
                    TextTable::num(tally[i].energy / 1e-3, 3),
                    TextTable::num(edp / 1e-9, 2),
                    TextTable::num(100.0 * edp / ref_edp, 1) + "%"});
  }
  std::printf("%s\n", totals.str().c_str());
  std::printf("Recommendation for this mix: %s (EDP %.1f%% of the "
              "Full-SRAM reference).\n",
              magpie::to_string(scenarios[best]),
              100.0 * best_edp / ref_edp);
  std::printf("The decision flips with the workload — rerun with your own "
              "mix; that one-command loop is what MAGPIE is for.\n");
  return 0;
}
