// Hybrid-memory system exploration with MAGPIE — the Section IV use case.
//
// Question: should an IoT gateway SoC (big.LITTLE) move its L2 caches to
// MSS STT-MRAM? The example runs a custom kernel mix through all four
// scenarios and prints the recommendation with the supporting numbers —
// exactly the "script-oriented" design-space exploration the paper
// describes MAGPIE providing.
//
//   $ ./hybrid_system_exploration
#include <cstdio>
#include <string>
#include <vector>

#include "magpie/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace mss;
  using util::TextTable;

  std::printf("=== MAGPIE hybrid-memory exploration: IoT gateway kernel "
              "mix ===\n\n");

  const auto pdk = core::Pdk::mss45();
  // Gateway mix: sensing preprocessing (streaming), local inference
  // (capacity hungry), video encode (write heavy).
  const std::vector<std::string> mix = {"streamcluster", "bodytrack", "x264"};

  struct Tally {
    double time = 0.0;
    double energy = 0.0;
  };
  std::vector<Tally> tally(magpie::all_scenarios().size());

  TextTable per_kernel({"kernel", "scenario", "exec (ms)", "energy (mJ)",
                        "EDP ratio vs SRAM"});
  for (const auto& name : mix) {
    const auto kernel = magpie::kernel_by_name(name);
    const auto runs = magpie::run_kernel_all_scenarios(kernel, pdk);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      tally[i].time += runs[i].activity.exec_time;
      tally[i].energy += runs[i].energy.total();
      const auto m = magpie::normalize(runs[0], runs[i]);
      per_kernel.add_row({name, magpie::to_string(runs[i].scenario),
                          TextTable::num(runs[i].activity.exec_time / 1e-3, 3),
                          TextTable::num(runs[i].energy.total() / 1e-3, 3),
                          TextTable::num(m.edp_ratio, 3)});
    }
  }
  std::printf("%s\n", per_kernel.str().c_str());

  std::printf("Mix totals:\n");
  TextTable totals({"scenario", "time (ms)", "energy (mJ)", "EDP (uJs)",
                    "vs Full-SRAM"});
  const double ref_edp = tally[0].time * tally[0].energy;
  std::size_t best = 0;
  double best_edp = 1e300;
  const auto scenarios = magpie::all_scenarios();
  for (std::size_t i = 0; i < tally.size(); ++i) {
    const double edp = tally[i].time * tally[i].energy;
    if (edp < best_edp) {
      best_edp = edp;
      best = i;
    }
    totals.add_row({magpie::to_string(scenarios[i]),
                    TextTable::num(tally[i].time / 1e-3, 3),
                    TextTable::num(tally[i].energy / 1e-3, 3),
                    TextTable::num(edp / 1e-9, 2),
                    TextTable::num(100.0 * edp / ref_edp, 1) + "%"});
  }
  std::printf("%s\n", totals.str().c_str());
  std::printf("Recommendation for this mix: %s (EDP %.1f%% of the "
              "Full-SRAM reference).\n",
              magpie::to_string(scenarios[best]),
              100.0 * best_edp / ref_edp);
  std::printf("The decision flips with the workload — rerun with your own "
              "mix; that one-command loop is what MAGPIE is for.\n");
  return 0;
}
